"""Flow-table offload evaluation: verdicts → rule-table dynamics.

The classifier's downstream purpose is deciding which flows deserve
dedicated forwarding state — a TCAM rule, an offloaded fast-path
entry. The SDN literature evaluates exactly that trade-off
("Boundaries of Flow Table Usage Reduction Algorithms Based on
Elephant Flow Detection", PAPERS.md): given a rule table of size F,
how much traffic do elephant-driven rules cover, and how much rule
churn does keeping them current cost?

:class:`FlowTableSimulator` replays the pipeline's online per-slot
verdicts against such a table:

- a flow gets a rule when it is classified elephant, subject to the
  table's capacity and eviction policy (``lru-idle``, ``min-bytes``,
  or ``no-evict``);
- an installed rule is *refreshed* every slot its flow is classified
  elephant again, and expires after ``cooldown`` consecutive slots
  without a refresh (the latent-heat analogue: state outlives the
  instantaneous verdict, but not indefinitely);
- coverage is measured at slot *entry* — a rule only covers traffic
  in slots after the one that triggered its installation, exactly as
  a real table programmed from the previous slot's verdicts would —
  against the ground-truth per-slot byte matrix when one is supplied
  (sketch-backend runs are scored against exact bytes, not their own
  estimates).

Per-slot occupancy, byte coverage, and install/evict/expire churn land
in :class:`OffloadSlot` rows collected by :class:`OffloadReport`;
:func:`simulate_offload` drives a whole event stream through one
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.streaming import SlotVerdict
from repro.errors import ClassificationError
from repro.net.prefix import Prefix
from repro.pipeline.sources import SlotFrame

#: Valid :attr:`OffloadSpec.eviction` policies.
EVICTION_POLICIES = ("lru-idle", "min-bytes", "no-evict")

#: Default slots a rule survives without an elephant refresh.
DEFAULT_COOLDOWN_SLOTS = 2


@dataclass(frozen=True)
class OffloadSpec:
    """The rule table being simulated.

    ``table_size`` is F, the hard rule capacity (0 is legal: nothing
    ever installs, the control case). ``eviction`` picks the victim
    when an elephant wants a rule and the table is full:

    - ``lru-idle`` — the rule idle longest (most slots since its last
      elephant refresh); ties break to the fewer bytes this slot,
      then the lowest row.
    - ``min-bytes`` — the rule carrying the fewest bytes this slot;
      ties break to the most idle, then the lowest row.
    - ``no-evict`` — never evict; the install is rejected instead.

    Rules refreshed in the current slot are never victims. ``cooldown``
    is the expiry horizon: a rule unrefreshed that many consecutive
    slots is removed even when the table has room.
    """

    table_size: int
    eviction: str = "lru-idle"
    cooldown: int = DEFAULT_COOLDOWN_SLOTS

    def __post_init__(self) -> None:
        if self.table_size < 0:
            raise ClassificationError("table_size must be >= 0")
        if self.eviction not in EVICTION_POLICIES:
            raise ClassificationError(
                f"unknown eviction policy {self.eviction!r}; expected "
                f"one of {', '.join(EVICTION_POLICIES)}"
            )
        if self.cooldown < 1:
            raise ClassificationError("cooldown must be >= 1")


@dataclass
class _Rule:
    """Table state for one installed prefix."""

    row: int
    idle_slots: int = 0
    slot_bytes: float = 0.0


@dataclass(frozen=True)
class OffloadSlot:
    """One slot's table dynamics.

    ``covered_bytes`` / ``total_bytes`` are measured with the table as
    it stood when the slot *began*; ``occupancy`` is the rule count
    after this slot's installs, evictions, and expiries. ``rejected``
    counts installs refused under ``no-evict`` (or any policy when
    every incumbent is itself a current elephant).
    """

    slot: int
    occupancy: int
    covered_bytes: float
    total_bytes: float
    installs: int
    evictions: int
    expirations: int
    rejected: int

    @property
    def coverage(self) -> float:
        """Fraction of this slot's bytes matched by pre-installed
        rules."""
        if self.total_bytes <= 0:
            return 0.0
        return self.covered_bytes / self.total_bytes

    @property
    def churn(self) -> int:
        """Rule table writes this slot (installs + removals)."""
        return self.installs + self.evictions + self.expirations


class FlowTableSimulator:
    """Replay per-slot verdicts against a bounded rule table.

    Call :meth:`observe` once per classified slot, in slot order, with
    the frame/verdict pair the pipeline emitted. ``truth_bytes`` (a
    ``prefix → bytes`` map for the slot) and ``truth_total`` override
    the byte accounting — pass them when the pipeline ran on a sketch
    backend and coverage should be scored against exact traffic. The
    residual accounting row is never installable and its mass counts
    only toward the total (it is traffic the table could not have
    matched).
    """

    def __init__(self, spec: OffloadSpec, slot_seconds: float) -> None:
        if slot_seconds <= 0:
            raise ClassificationError("slot_seconds must be positive")
        self.spec = spec
        self.slot_seconds = slot_seconds
        self.rules: dict[Prefix, _Rule] = {}
        self.slots: list[OffloadSlot] = []
        self._installs_total = 0
        self._evictions_total = 0
        self._expirations_total = 0

    @property
    def occupancy(self) -> int:
        """Rules currently installed."""
        return len(self.rules)

    def observe(
        self,
        frame: SlotFrame,
        verdict: SlotVerdict,
        truth_bytes: dict[Prefix, float] | None = None,
        truth_total: float | None = None,
    ) -> OffloadSlot:
        """Advance the table one slot; returns that slot's record."""
        slot_bytes, total = self._slot_bytes(
            frame, truth_bytes, truth_total
        )
        covered = sum(
            slot_bytes.get(prefix, 0.0) for prefix in self.rules
        )

        elephants = {
            frame.population[row]
            for row in verdict.elephants().tolist()
            if row != frame.residual_row
        }
        refreshed = set()
        for prefix, rule in self.rules.items():
            rule.slot_bytes = slot_bytes.get(prefix, 0.0)
            if prefix in elephants:
                rule.idle_slots = 0
                refreshed.add(prefix)
            else:
                rule.idle_slots += 1

        expirations = 0
        for prefix in [
            p
            for p, rule in self.rules.items()
            if rule.idle_slots >= self.spec.cooldown
        ]:
            del self.rules[prefix]
            expirations += 1

        installs = evictions = rejected = 0
        for prefix in sorted(
            elephants - set(self.rules), key=lambda p: self._row(frame, p)
        ):
            if len(self.rules) >= self.spec.table_size:
                victim = self._pick_victim(refreshed)
                if victim is None:
                    rejected += 1
                    continue
                del self.rules[victim]
                evictions += 1
            self.rules[prefix] = _Rule(
                row=self._row(frame, prefix),
                slot_bytes=slot_bytes.get(prefix, 0.0),
            )
            refreshed.add(prefix)
            installs += 1

        self._installs_total += installs
        self._evictions_total += evictions
        self._expirations_total += expirations
        record = OffloadSlot(
            slot=frame.slot,
            occupancy=len(self.rules),
            covered_bytes=covered,
            total_bytes=total,
            installs=installs,
            evictions=evictions,
            expirations=expirations,
            rejected=rejected,
        )
        self.slots.append(record)
        return record

    def report(self) -> "OffloadReport":
        """The run-level summary over the slots observed so far."""
        return OffloadReport(
            spec=self.spec,
            slots=list(self.slots),
            installs=self._installs_total,
            evictions=self._evictions_total,
            expirations=self._expirations_total,
        )

    # -- internals -----------------------------------------------------

    def _slot_bytes(
        self,
        frame: SlotFrame,
        truth_bytes: dict[Prefix, float] | None,
        truth_total: float | None,
    ) -> tuple[dict[Prefix, float], float]:
        if truth_bytes is not None:
            total = (
                truth_total
                if truth_total is not None
                else float(sum(truth_bytes.values()))
            )
            return truth_bytes, total
        scale = self.slot_seconds / 8.0
        volumes: dict[Prefix, float] = {}
        total = float(frame.rates.sum()) * scale
        for row in np.flatnonzero(frame.rates > 0.0).tolist():
            if row == frame.residual_row:
                continue
            volumes[frame.population[row]] = (
                float(frame.rates[row]) * scale
            )
        return volumes, total

    @staticmethod
    def _row(frame: SlotFrame, prefix: Prefix) -> int:
        # population rows are permanent; index() over the live
        # sequence is fine at per-slot (not per-packet) frequency
        return frame.population.index(prefix)

    def _pick_victim(self, refreshed: set[Prefix]) -> Prefix | None:
        if self.spec.eviction == "no-evict":
            return None
        candidates = [
            (prefix, rule)
            for prefix, rule in self.rules.items()
            if prefix not in refreshed
        ]
        if not candidates:
            return None
        if self.spec.eviction == "lru-idle":
            key = lambda item: (
                -item[1].idle_slots,
                item[1].slot_bytes,
                item[1].row,
            )
        else:  # min-bytes
            key = lambda item: (
                item[1].slot_bytes,
                -item[1].idle_slots,
                item[1].row,
            )
        return min(candidates, key=key)[0]


@dataclass(frozen=True)
class OffloadReport:
    """Run-level table dynamics: the occupancy/coverage/churn triple."""

    spec: OffloadSpec
    slots: list[OffloadSlot]
    installs: int
    evictions: int
    expirations: int

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    @property
    def mean_occupancy(self) -> float:
        """Mean rules installed at slot close."""
        if not self.slots:
            return 0.0
        return float(
            np.mean([record.occupancy for record in self.slots])
        )

    @property
    def byte_coverage(self) -> float:
        """Bytes matched by pre-installed rules / total bytes, pooled
        over every slot (slot 0 necessarily contributes zero matched
        bytes — the table starts empty)."""
        total = sum(record.total_bytes for record in self.slots)
        if total <= 0:
            return 0.0
        covered = sum(record.covered_bytes for record in self.slots)
        return covered / total

    @property
    def mean_churn(self) -> float:
        """Mean table writes (installs + removals) per slot."""
        if not self.slots:
            return 0.0
        return float(np.mean([record.churn for record in self.slots]))

    @property
    def rejected(self) -> int:
        """Installs refused across the run."""
        return sum(record.rejected for record in self.slots)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready summary (what ``repro offload --json`` emits)."""
        return {
            "table_size": self.spec.table_size,
            "eviction": self.spec.eviction,
            "cooldown": self.spec.cooldown,
            "num_slots": self.num_slots,
            "mean_occupancy": self.mean_occupancy,
            "byte_coverage": self.byte_coverage,
            "mean_churn": self.mean_churn,
            "installs": self.installs,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "rejected": self.rejected,
            "occupancy_by_slot": [
                record.occupancy for record in self.slots
            ],
            "coverage_by_slot": [
                record.coverage for record in self.slots
            ],
            "churn_by_slot": [record.churn for record in self.slots],
        }


def simulate_offload(
    events: Iterable,
    spec: OffloadSpec,
    slot_seconds: float,
    truth: dict[int, dict[Prefix, float]] | None = None,
    truth_totals: dict[int, float] | None = None,
) -> OffloadReport:
    """Drive a stream of classified events through one rule table.

    ``events`` is any iterable of
    :class:`~repro.pipeline.engine.StreamEvent`-shaped objects (frame +
    verdict). ``truth`` optionally maps slot number → per-prefix bytes
    (with ``truth_totals`` carrying each slot's full byte total,
    residual included) so sketch-backend runs score against exact
    traffic.
    """
    simulator = FlowTableSimulator(spec, slot_seconds)
    for event in events:
        slot = event.frame.slot
        simulator.observe(
            event.frame,
            event.verdict,
            truth_bytes=None if truth is None else truth.get(slot, {}),
            truth_total=(
                None if truth_totals is None else truth_totals.get(slot)
            ),
        )
    return simulator.report()


__all__ = [
    "DEFAULT_COOLDOWN_SLOTS",
    "EVICTION_POLICIES",
    "FlowTableSimulator",
    "OffloadReport",
    "OffloadSlot",
    "OffloadSpec",
    "simulate_offload",
]
