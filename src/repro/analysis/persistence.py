"""Persistence prediction: the traffic-engineering payoff metric.

A re-routing decision made at slot ``t`` pays off only if the chosen
elephants are still elephants at ``t + k``. The persistence curve
``P(elephant at t+k | elephant at t)`` measures exactly that, and the
contrast between the single-feature and latent-heat curves is the
paper's argument rendered as the quantity a TE system cares about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClassificationError
from repro.core.result import ClassificationResult


@dataclass(frozen=True)
class PersistenceCurve:
    """``probabilities[k-1] = P(elephant at t+k | elephant at t)``."""

    label: str
    lags: np.ndarray
    probabilities: np.ndarray

    def at_lag(self, lag: int) -> float:
        """Persistence probability at ``lag`` slots ahead."""
        index = int(np.searchsorted(self.lags, lag))
        if index >= self.lags.size or self.lags[index] != lag:
            raise ClassificationError(f"lag {lag} not in curve")
        return float(self.probabilities[index])

    def half_life_slots(self) -> float:
        """First lag at which persistence drops below one half.

        Returns ``inf`` when the curve never crosses 0.5 within its
        horizon — the desirable case for traffic engineering.
        """
        below = np.flatnonzero(self.probabilities < 0.5)
        if below.size == 0:
            return float("inf")
        return float(self.lags[below[0]])


def persistence_curve(mask: np.ndarray, max_lag: int,
                      label: str = "") -> PersistenceCurve:
    """Compute the persistence curve of an elephant mask.

    For each lag ``k`` the probability is estimated over all (flow,
    slot) pairs with ``slot + k`` inside the horizon:
    ``P = |{elephant at t and t+k}| / |{elephant at t}|``.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ClassificationError("expected a (flows, slots) mask")
    num_slots = mask.shape[1]
    if not 1 <= max_lag < num_slots:
        raise ClassificationError(
            f"max_lag {max_lag} must be in 1..{num_slots - 1}"
        )
    lags = np.arange(1, max_lag + 1)
    probabilities = np.empty(max_lag, dtype=float)
    for index, lag in enumerate(lags):
        now = mask[:, :num_slots - lag]
        later = mask[:, lag:]
        elephants_now = int(now.sum())
        if elephants_now == 0:
            probabilities[index] = 0.0
        else:
            still = int(np.logical_and(now, later).sum())
            probabilities[index] = still / elephants_now
    return PersistenceCurve(label=label, lags=lags,
                            probabilities=probabilities)


def persistence_from_result(result: ClassificationResult,
                            max_lag: int) -> PersistenceCurve:
    """Persistence curve of a classification result."""
    return persistence_curve(result.elephant_mask, max_lag,
                             label=result.label)


def persistence_gain(single: PersistenceCurve,
                     latent: PersistenceCurve,
                     lag: int) -> float:
    """How much more persistent latent-heat elephants are at ``lag``."""
    baseline = single.at_lag(lag)
    if baseline == 0:
        return float("inf")
    return latent.at_lag(lag) / baseline
