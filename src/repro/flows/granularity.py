"""Alternative flow granularities.

The paper's introduction surveys elephants-and-mice findings "at the
level of network prefixes, fixed length prefixes, TCP flows, ASes";
its own flow key is the BGP prefix. This module rolls a BGP-granularity
rate matrix up to the coarser granularities so the classification
schemes can be compared across definitions of "flow":

- :func:`aggregate_fixed_length` — fixed-length prefixes (/8, /16, ...),
- :func:`aggregate_origin_as` — BGP origin AS (via the RIB).

Rolling up is exact for bandwidths: the rate of a coarse key is the sum
of the rates of its members in every slot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClassificationError
from repro.flows.matrix import RateMatrix
from repro.net import ipv4
from repro.net.prefix import Prefix
from repro.routing.rib import RoutingTable


def aggregate_fixed_length(matrix: RateMatrix, length: int) -> RateMatrix:
    """Roll the matrix up to fixed-length prefixes of ``length`` bits.

    Rows whose prefix is *shorter* than ``length`` cannot be split
    without making up data, so they are kept as their own (shorter)
    keys; rows at or below ``length`` are merged into their enclosing
    ``/length`` prefix. This mirrors how fixed-prefix studies handled
    routing aggregates.
    """
    if not 0 <= length <= ipv4.ADDRESS_BITS:
        raise ClassificationError(f"length {length} outside 0..32")
    groups: dict[Prefix, list[int]] = {}
    for row, prefix in enumerate(matrix.prefixes):
        if prefix.length <= length:
            key = prefix
        else:
            key = Prefix.from_host(prefix.network, length)
        groups.setdefault(key, []).append(row)
    return _merge_groups(matrix, groups)


@dataclass(frozen=True)
class AsAggregation:
    """Result of an origin-AS rollup: matrix plus key metadata.

    The synthetic ``Prefix`` keys in ``matrix`` are placeholders (an AS
    is not an address range); ``as_numbers`` maps each row to its origin
    AS number.
    """

    matrix: RateMatrix
    as_numbers: list[int]


def aggregate_origin_as(matrix: RateMatrix,
                        table: RoutingTable) -> AsAggregation:
    """Roll the matrix up to BGP origin ASes.

    Every prefix row is attributed to the origin AS of its RIB entry;
    prefixes without a route are rejected loudly (they cannot happen in
    a matrix produced by this library's simulator or aggregator).
    """
    by_as: dict[int, list[int]] = {}
    for row, prefix in enumerate(matrix.prefixes):
        route = table.route_for(prefix)
        if route is None:
            raise ClassificationError(f"no route for prefix {prefix}")
        by_as.setdefault(route.origin_as.number, []).append(row)

    ordered_ases = sorted(by_as)
    rates = np.zeros((len(ordered_ases), matrix.num_slots))
    for index, asn in enumerate(ordered_ases):
        rates[index] = matrix.rates[by_as[asn], :].sum(axis=0)
    # Placeholder keys: one /32 per AS in the reserved 240/4 block,
    # which can never collide with real route prefixes.
    placeholders = [
        Prefix((0xF0 << 24) | index, 32)
        for index in range(len(ordered_ases))
    ]
    rolled = RateMatrix(placeholders, matrix.axis, rates)
    return AsAggregation(matrix=rolled, as_numbers=ordered_ases)


def _merge_groups(matrix: RateMatrix,
                  groups: dict[Prefix, list[int]]) -> RateMatrix:
    ordered_keys = sorted(groups)
    rates = np.zeros((len(ordered_keys), matrix.num_slots))
    for index, key in enumerate(ordered_keys):
        rates[index] = matrix.rates[groups[key], :].sum(axis=0)
    return RateMatrix(ordered_keys, matrix.axis, rates)


def granularity_sweep(matrix: RateMatrix,
                      lengths: tuple[int, ...] = (8, 16, 24)
                      ) -> dict[str, RateMatrix]:
    """The matrices for a granularity comparison, keyed by label."""
    out: dict[str, RateMatrix] = {"bgp-prefix": matrix}
    for length in lengths:
        out[f"/{length}"] = aggregate_fixed_length(matrix, length)
    return out
