"""Time discretisation and flow records.

The paper discretises time into slots of length ``T`` (5 minutes by
default) and works with the average bandwidth of each prefix-flow per
slot. :class:`TimeAxis` owns that discretisation; :class:`FlowRecord`
carries per-flow byte/packet accounting between the packet layer and
the rate matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ClassificationError
from repro.net.prefix import Prefix

#: The paper's default measurement interval (seconds).
DEFAULT_SLOT_SECONDS = 300.0


@dataclass(frozen=True)
class TimeAxis:
    """A contiguous sequence of measurement slots.

    ``start`` is the epoch timestamp of slot 0; slot ``k`` covers
    ``[start + k * slot_seconds, start + (k + 1) * slot_seconds)``.
    """

    start: float
    slot_seconds: float
    num_slots: int

    def __post_init__(self) -> None:
        if self.slot_seconds <= 0:
            raise ClassificationError("slot_seconds must be positive")
        if self.num_slots <= 0:
            raise ClassificationError("num_slots must be positive")

    @property
    def end(self) -> float:
        """Timestamp just past the final slot."""
        return self.start + self.num_slots * self.slot_seconds

    @property
    def duration(self) -> float:
        """Total covered time in seconds."""
        return self.num_slots * self.slot_seconds

    def slot_of(self, timestamp: float) -> int:
        """Slot index containing ``timestamp``; raises when outside."""
        if not self.start <= timestamp < self.end:
            raise ClassificationError(
                f"timestamp {timestamp} outside axis "
                f"[{self.start}, {self.end})"
            )
        return int((timestamp - self.start) // self.slot_seconds)

    def slot_start(self, slot: int) -> float:
        """Timestamp at which ``slot`` begins."""
        self._check_slot(slot)
        return self.start + slot * self.slot_seconds

    def slot_times(self) -> np.ndarray:
        """Start timestamps of every slot."""
        return self.start + np.arange(self.num_slots) * self.slot_seconds

    def hours_since_start(self) -> np.ndarray:
        """Slot start offsets in hours, for plotting."""
        return np.arange(self.num_slots) * self.slot_seconds / 3600.0

    def window(self, first_slot: int, num_slots: int) -> "TimeAxis":
        """A sub-axis of ``num_slots`` slots starting at ``first_slot``."""
        self._check_slot(first_slot)
        if first_slot + num_slots > self.num_slots:
            raise ClassificationError("window extends past the axis")
        return TimeAxis(
            self.slot_start(first_slot), self.slot_seconds, num_slots
        )

    def rebin(self, factor: int) -> "TimeAxis":
        """A coarser axis merging ``factor`` slots into one.

        Trailing slots that do not fill a coarse slot are dropped,
        mirroring :meth:`RateMatrix.rebin`.
        """
        if factor < 1:
            raise ClassificationError("rebin factor must be >= 1")
        coarse_slots = self.num_slots // factor
        if coarse_slots == 0:
            raise ClassificationError("rebin factor exceeds axis length")
        return TimeAxis(
            self.start, self.slot_seconds * factor, coarse_slots
        )

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ClassificationError(
                f"slot {slot} outside 0..{self.num_slots - 1}"
            )


@dataclass
class FlowRecord:
    """Byte/packet accounting for one prefix-flow, updated per packet."""

    prefix: Prefix
    bytes_total: int = 0
    packets: int = 0
    first_seen: float = field(default=np.inf)
    last_seen: float = field(default=-np.inf)

    def add_packet(self, timestamp: float, wire_bytes: int) -> None:
        """Account one packet of ``wire_bytes`` bytes at ``timestamp``."""
        if wire_bytes < 0:
            raise ClassificationError("packet size cannot be negative")
        self.bytes_total += wire_bytes
        self.packets += 1
        if timestamp < self.first_seen:
            self.first_seen = timestamp
        if timestamp > self.last_seen:
            self.last_seen = timestamp

    def add_group(
        self,
        packets: int,
        wire_bytes: int,
        first_seen: float,
        last_seen: float,
    ) -> None:
        """Account a pre-aggregated group of packets (vectorized paths).

        An empty group (``packets == 0``) is an explicit no-op: the
        ``inf``/``-inf`` sentinels callers pass for first/last must not
        leak into ``first_seen``/``last_seen``, and a later real group
        must still count as the first traffic seen.
        """
        if wire_bytes < 0 or packets < 0:
            raise ClassificationError("group totals cannot be negative")
        if packets == 0:
            return
        self.bytes_total += wire_bytes
        self.packets += packets
        if first_seen < self.first_seen:
            self.first_seen = first_seen
        if last_seen > self.last_seen:
            self.last_seen = last_seen

    @property
    def mean_packet_size(self) -> float:
        """Average packet size in bytes (0 when no packets)."""
        if self.packets == 0:
            return 0.0
        return self.bytes_total / self.packets

    @property
    def active_span(self) -> float:
        """Seconds between first and last packet (0 for a single packet)."""
        if self.packets == 0:
            return 0.0
        return max(0.0, self.last_seen - self.first_seen)


def grouped_packet_stats(
    groups: np.ndarray,
    sizes: np.ndarray,
    timestamps: np.ndarray,
    num_groups: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-group packet counts, byte sums, and first/last timestamps.

    The shared accumulation kernel behind both vectorized ingestion
    paths (:meth:`FlowAggregator.add_batch` and the streaming
    aggregator): one ``bincount``/``ufunc.at`` pass instead of a Python
    loop per packet. Groups with no packets report ``inf``/``-inf``
    first/last — callers skip rows where ``counts`` is zero.
    """
    counts = np.bincount(groups, minlength=num_groups)
    byte_sums = np.bincount(groups, weights=sizes, minlength=num_groups)
    first = np.full(num_groups, np.inf)
    last = np.full(num_groups, -np.inf)
    np.minimum.at(first, groups, timestamps)
    np.maximum.at(last, groups, timestamps)
    return counts, byte_sums, first, last
