"""Flow accounting: time axes, rate matrices, packet aggregation."""

from repro.flows.aggregate import (
    AggregationStats,
    FlowAggregator,
    aggregate_pcap,
)
from repro.flows.granularity import (
    AsAggregation,
    aggregate_fixed_length,
    aggregate_origin_as,
    granularity_sweep,
)
from repro.flows.matrix import RateMatrix
from repro.flows.records import DEFAULT_SLOT_SECONDS, FlowRecord, TimeAxis

__all__ = [
    "AggregationStats",
    "AsAggregation",
    "DEFAULT_SLOT_SECONDS",
    "FlowAggregator",
    "FlowRecord",
    "RateMatrix",
    "TimeAxis",
    "aggregate_fixed_length",
    "aggregate_origin_as",
    "aggregate_pcap",
    "granularity_sweep",
]
