"""Flow accounting: time axes, rate matrices, packet aggregation."""

from repro.flows.aggregate import (
    AggregationStats,
    FlowAggregator,
    aggregate_pcap,
)
from repro.flows.granularity import (
    AsAggregation,
    aggregate_fixed_length,
    aggregate_origin_as,
    granularity_sweep,
)
from repro.flows.interchange import (
    FLOW_INFO_COLUMNS,
    FlowInfoRecord,
    FlowRecordSource,
    read_flow_records,
    slot_flow_records,
    write_flow_records,
)
from repro.flows.matrix import RateMatrix
from repro.flows.records import DEFAULT_SLOT_SECONDS, FlowRecord, TimeAxis

__all__ = [
    "AggregationStats",
    "AsAggregation",
    "DEFAULT_SLOT_SECONDS",
    "FLOW_INFO_COLUMNS",
    "FlowAggregator",
    "FlowInfoRecord",
    "FlowRecord",
    "FlowRecordSource",
    "RateMatrix",
    "TimeAxis",
    "aggregate_fixed_length",
    "aggregate_origin_as",
    "aggregate_pcap",
    "granularity_sweep",
    "read_flow_records",
    "slot_flow_records",
    "write_flow_records",
]
