"""The rate matrix: per-prefix, per-slot average bandwidth.

``x_i(t)`` in the paper — the average bandwidth of the traffic destined
to network prefix ``i`` during slot ``t`` — lives here as a dense
``(num_flows, num_slots)`` float array in bits per second. All
classification and analysis layers consume this structure, whether it
came from real packets (:mod:`repro.flows.aggregate`) or from the fluid
simulator (:mod:`repro.traffic.linksim`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ClassificationError
from repro.net.prefix import Prefix
from repro.flows.records import TimeAxis


@dataclass
class RateMatrix:
    """Bandwidth series for a set of prefix-flows over a time axis.

    ``rates[i, t]`` is flow ``i``'s average bandwidth in slot ``t``
    (bits/second). Zero means the flow sent nothing in that slot — absent
    flows are rows of zeros, never missing rows, which keeps flow
    identity stable across slots (the classifiers depend on that).
    """

    prefixes: list[Prefix]
    axis: TimeAxis
    rates: np.ndarray

    def __post_init__(self) -> None:
        self.rates = np.asarray(self.rates, dtype=float)
        if self.rates.ndim != 2:
            raise ClassificationError("rates must be a 2-D array")
        if self.rates.shape != (len(self.prefixes), self.axis.num_slots):
            raise ClassificationError(
                f"rates shape {self.rates.shape} does not match "
                f"{len(self.prefixes)} prefixes x {self.axis.num_slots} slots"
            )
        if np.any(self.rates < 0) or not np.all(np.isfinite(self.rates)):
            raise ClassificationError("rates must be finite and non-negative")
        if len(set(self.prefixes)) != len(self.prefixes):
            raise ClassificationError("duplicate prefixes in rate matrix")

    # ------------------------------------------------------------------
    # basic views
    # ------------------------------------------------------------------

    @property
    def num_flows(self) -> int:
        """Number of prefix-flows (rows)."""
        return len(self.prefixes)

    @property
    def num_slots(self) -> int:
        """Number of measurement slots (columns)."""
        return self.axis.num_slots

    def slot_rates(self, slot: int) -> np.ndarray:
        """All flow bandwidths in ``slot`` (read-only view)."""
        if not 0 <= slot < self.num_slots:
            raise ClassificationError(f"slot {slot} out of range")
        return self.rates[:, slot]

    def flow_series(self, index: int) -> np.ndarray:
        """Bandwidth series of flow ``index`` across all slots."""
        if not 0 <= index < self.num_flows:
            raise ClassificationError(f"flow index {index} out of range")
        return self.rates[index, :]

    def index_of(self, prefix: Prefix) -> int:
        """Row index of ``prefix``; raises when absent."""
        try:
            return self._prefix_index()[prefix]
        except KeyError:
            raise ClassificationError(f"prefix {prefix} not in matrix") from None

    def _prefix_index(self) -> dict[Prefix, int]:
        if not hasattr(self, "_index_cache"):
            self._index_cache = {
                prefix: row for row, prefix in enumerate(self.prefixes)
            }
        return self._index_cache

    def iter_slots(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(slot, rates_in_slot)`` in time order."""
        for slot in range(self.num_slots):
            yield slot, self.rates[:, slot]

    # ------------------------------------------------------------------
    # aggregate statistics
    # ------------------------------------------------------------------

    def total_per_slot(self) -> np.ndarray:
        """Total link load per slot (sum over flows), bits/second."""
        return self.rates.sum(axis=0)

    def active_per_slot(self) -> np.ndarray:
        """Number of flows with non-zero traffic per slot."""
        return (self.rates > 0).sum(axis=0)

    def ever_active_mask(self) -> np.ndarray:
        """Boolean mask of flows that sent any traffic at all."""
        return (self.rates > 0).any(axis=1)

    def mean_utilization(self, capacity_bps: float) -> float:
        """Average link utilisation against ``capacity_bps``."""
        if capacity_bps <= 0:
            raise ClassificationError("capacity must be positive")
        return float(self.total_per_slot().mean() / capacity_bps)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def rebin(self, factor: int) -> "RateMatrix":
        """Merge ``factor`` consecutive slots by averaging their rates.

        Averaging (not summing) is correct for *bandwidths*: a flow
        sending 1 Mb/s in each of two 5-minute slots sends 1 Mb/s over
        the merged 10-minute slot. Used by the T ∈ {1, 5, 10} minute
        ablation.
        """
        coarse_axis = self.axis.rebin(factor)
        usable = coarse_axis.num_slots * factor
        reshaped = self.rates[:, :usable].reshape(
            self.num_flows, coarse_axis.num_slots, factor
        )
        return RateMatrix(list(self.prefixes), coarse_axis,
                          reshaped.mean(axis=2))

    def window(self, first_slot: int, num_slots: int) -> "RateMatrix":
        """Restrict to a contiguous slot window."""
        sub_axis = self.axis.window(first_slot, num_slots)
        return RateMatrix(
            list(self.prefixes), sub_axis,
            self.rates[:, first_slot:first_slot + num_slots].copy(),
        )

    def restrict_flows(self, indices: Sequence[int]) -> "RateMatrix":
        """Keep only the given flow rows (in the given order)."""
        index_array = np.asarray(indices, dtype=int)
        return RateMatrix(
            [self.prefixes[i] for i in index_array], self.axis,
            self.rates[index_array, :].copy(),
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save_npz(self, path: str) -> None:
        """Persist to a compressed ``.npz`` file."""
        np.savez_compressed(
            path,
            rates=self.rates,
            networks=np.array([p.network for p in self.prefixes],
                              dtype=np.uint32),
            lengths=np.array([p.length for p in self.prefixes],
                             dtype=np.uint8),
            axis=np.array([self.axis.start, self.axis.slot_seconds,
                           float(self.axis.num_slots)]),
        )

    @classmethod
    def load_npz(cls, path: str) -> "RateMatrix":
        """Load a matrix written by :meth:`save_npz`."""
        with np.load(path) as data:
            start, slot_seconds, num_slots = data["axis"]
            prefixes = [
                Prefix(int(network), int(length))
                for network, length in zip(data["networks"], data["lengths"])
            ]
            return cls(
                prefixes,
                TimeAxis(float(start), float(slot_seconds), int(num_slots)),
                data["rates"].astype(float),
            )

    def save_csv(self, path: str) -> None:
        """Export as CSV for interop with external tooling.

        Header row: ``prefix,<slot start timestamps...>``; one row per
        flow with bandwidths in bits/second. The axis is recoverable
        from the header timestamps, which are therefore written at full
        precision — rounding them (the old ``.3f`` format) made
        sub-millisecond slot lengths round-trip to a wrong inferred
        axis.
        """
        times = self.axis.slot_times()
        with open(path, "w") as stream:
            header = ",".join(["prefix"] + [repr(float(t)) for t in times])
            stream.write(header + "\n")
            for prefix, row in zip(self.prefixes, self.rates):
                cells = ",".join(f"{rate:.6g}" for rate in row)
                stream.write(f"{prefix},{cells}\n")

    @classmethod
    def load_csv(cls, path: str) -> "RateMatrix":
        """Load a matrix written by :meth:`save_csv`.

        The slot length is inferred from the header timestamps; a
        single-slot file cannot carry that information and is rejected.
        """
        with open(path) as stream:
            header = stream.readline().strip()
            columns = header.split(",")
            if columns[0] != "prefix" or len(columns) < 3:
                raise ClassificationError(
                    "CSV must start with 'prefix' and >= 2 slot columns"
                )
            times = np.array([float(cell) for cell in columns[1:]])
            steps = np.diff(times)
            if not np.allclose(steps, steps[0]):
                raise ClassificationError("slot timestamps must be regular")
            prefixes = []
            rows = []
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                cells = line.split(",")
                prefixes.append(Prefix.parse(cells[0]))
                rows.append([float(cell) for cell in cells[1:]])
            axis = TimeAxis(float(times[0]), float(steps[0]), times.size)
            return cls(prefixes, axis, np.array(rows, dtype=float))
