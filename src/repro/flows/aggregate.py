"""Packets → prefix-flow bandwidths.

This is the measurement front-end the paper's monitoring infrastructure
performed: every captured packet is mapped to its BGP destination prefix
by longest-prefix match, and byte counts are accumulated per prefix per
measurement slot. Dividing by the slot length yields ``x_i(t)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import ClassificationError
from repro.flows.matrix import RateMatrix
from repro.flows.records import FlowRecord, TimeAxis
from repro.net.prefix import Prefix
from repro.pcap.packet import PacketSummary
from repro.pcap.pcapfile import PcapReader
from repro.pcap.packet import summarize_record
from repro.routing.rib import RoutingTable


@dataclass
class AggregationStats:
    """Bookkeeping from one aggregation run."""

    packets_seen: int = 0
    packets_matched: int = 0
    packets_unrouted: int = 0
    packets_outside_axis: int = 0
    bytes_matched: int = 0

    @property
    def match_rate(self) -> float:
        """Fraction of packets that resolved to a prefix."""
        if self.packets_seen == 0:
            return 0.0
        return self.packets_matched / self.packets_seen


@dataclass
class FlowAggregator:
    """Accumulate packet summaries into per-prefix, per-slot byte counts.

    Flows are keyed by the longest-matching RIB prefix. Packets whose
    destination has no route, or whose timestamp falls outside the axis,
    are counted in :attr:`stats` but otherwise dropped — exactly what a
    passive monitor does with unroutable traffic.
    """

    table: RoutingTable
    axis: TimeAxis
    stats: AggregationStats = field(default_factory=AggregationStats)

    def __post_init__(self) -> None:
        self._bytes: dict[Prefix, np.ndarray] = {}
        self._records: dict[Prefix, FlowRecord] = {}

    def add(self, packet: PacketSummary) -> bool:
        """Account one packet; returns ``True`` if it was matched."""
        self.stats.packets_seen += 1
        if not (self.axis.start <= packet.timestamp < self.axis.end):
            self.stats.packets_outside_axis += 1
            return False
        route = self.table.resolve(packet.destination)
        if route is None:
            self.stats.packets_unrouted += 1
            return False
        prefix = route.prefix
        slot = self.axis.slot_of(packet.timestamp)
        if prefix not in self._bytes:
            self._bytes[prefix] = np.zeros(self.axis.num_slots)
            self._records[prefix] = FlowRecord(prefix)
        self._bytes[prefix][slot] += packet.wire_bytes
        self._records[prefix].add_packet(packet.timestamp, packet.wire_bytes)
        self.stats.packets_matched += 1
        self.stats.bytes_matched += packet.wire_bytes
        return True

    def add_all(self, packets: Iterable[PacketSummary]) -> int:
        """Account a stream of packets; returns the matched count."""
        matched = 0
        for packet in packets:
            if self.add(packet):
                matched += 1
        return matched

    def flow_records(self) -> list[FlowRecord]:
        """Per-flow accounting records, sorted by prefix."""
        return [self._records[p] for p in sorted(self._records)]

    def to_rate_matrix(self, include_all_routes: bool = False) -> RateMatrix:
        """Finish aggregation and emit the rate matrix (bits/second).

        With ``include_all_routes`` every RIB prefix gets a row (all-zero
        when it never received traffic), which matches the fluid
        simulator's convention of stable flow identity; otherwise only
        prefixes that actually received packets appear.
        """
        if include_all_routes:
            prefixes = self.table.prefixes()
        else:
            prefixes = sorted(self._bytes)
        if not prefixes:
            raise ClassificationError("no flows to build a matrix from")
        rates = np.zeros((len(prefixes), self.axis.num_slots))
        for row, prefix in enumerate(prefixes):
            counts = self._bytes.get(prefix)
            if counts is not None:
                rates[row, :] = counts * 8.0 / self.axis.slot_seconds
        return RateMatrix(list(prefixes), self.axis, rates)


def aggregate_pcap(path: str, table: RoutingTable,
                   axis: TimeAxis) -> tuple[RateMatrix, AggregationStats]:
    """Convenience: read a pcap file and aggregate it into a rate matrix."""
    aggregator = FlowAggregator(table, axis)
    with PcapReader.open(path) as reader:
        for record in reader:
            aggregator.add(summarize_record(record, reader.linktype))
    return aggregator.to_rate_matrix(), aggregator.stats
