"""Packets → prefix-flow bandwidths.

This is the measurement front-end the paper's monitoring infrastructure
performed: every captured packet is mapped to its BGP destination prefix
by longest-prefix match, and byte counts are accumulated per prefix per
measurement slot. Dividing by the slot length yields ``x_i(t)``.

Two ingestion paths produce identical matrices: the per-packet
:meth:`FlowAggregator.add` (one radix lookup and one dict probe per
packet — the reference implementation) and the vectorized
:meth:`FlowAggregator.add_batch`, which resolves a whole columnar batch
with one :class:`~repro.routing.lpm.CompiledLpm` search and bins it
with ``np.add.at``. :func:`aggregate_pcap` uses the vectorized path by
default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import ClassificationError
from repro.flows.matrix import RateMatrix
from repro.flows.records import FlowRecord, TimeAxis, grouped_packet_stats
from repro.net.prefix import Prefix
from repro.pcap.packet import PacketSummary
from repro.pcap.pcapfile import PcapReader
from repro.pcap.packet import summarize_record
from repro.routing.lpm import NO_ROUTE, CompiledLpm
from repro.routing.rib import RoutingTable


@dataclass
class AggregationStats:
    """Bookkeeping from one aggregation run."""

    packets_seen: int = 0
    packets_matched: int = 0
    packets_unrouted: int = 0
    packets_outside_axis: int = 0
    packets_skipped: int = 0
    bytes_matched: int = 0

    @property
    def match_rate(self) -> float:
        """Fraction of packets that resolved to a prefix."""
        if self.packets_seen == 0:
            return 0.0
        return self.packets_matched / self.packets_seen


@dataclass
class FlowAggregator:
    """Accumulate packet summaries into per-prefix, per-slot byte counts.

    Flows are keyed by the longest-matching RIB prefix. Packets whose
    destination has no route, or whose timestamp falls outside the axis,
    are counted in :attr:`stats` but otherwise dropped — exactly what a
    passive monitor does with unroutable traffic.
    """

    table: RoutingTable
    axis: TimeAxis
    stats: AggregationStats = field(default_factory=AggregationStats)

    def __post_init__(self) -> None:
        self._bytes: dict[Prefix, np.ndarray] = {}
        self._records: dict[Prefix, FlowRecord] = {}
        self._lpm: CompiledLpm | None = None
        self._lpm_generation = -1

    def add(self, packet: PacketSummary) -> bool:
        """Account one packet; returns ``True`` if it was matched."""
        self.stats.packets_seen += 1
        if not (self.axis.start <= packet.timestamp < self.axis.end):
            self.stats.packets_outside_axis += 1
            return False
        route = self.table.resolve(packet.destination)
        if route is None:
            self.stats.packets_unrouted += 1
            return False
        prefix = route.prefix
        slot = self.axis.slot_of(packet.timestamp)
        if prefix not in self._bytes:
            self._bytes[prefix] = np.zeros(self.axis.num_slots)
            self._records[prefix] = FlowRecord(prefix)
        self._bytes[prefix][slot] += packet.wire_bytes
        self._records[prefix].add_packet(packet.timestamp, packet.wire_bytes)
        self.stats.packets_matched += 1
        self.stats.bytes_matched += packet.wire_bytes
        return True

    def add_all(self, packets: Iterable[PacketSummary]) -> int:
        """Account a stream of packets; returns the matched count."""
        matched = 0
        for packet in packets:
            if self.add(packet):
                matched += 1
        return matched

    def add_batch(self, timestamps: np.ndarray, destinations: np.ndarray,
                  wire_bytes: np.ndarray) -> int:
        """Account a columnar batch of packets; returns the matched count.

        Semantically identical to calling :meth:`add` per packet (same
        matrix, same records, same stats) but the longest-prefix match
        is one sorted-array search over the whole batch and slot binning
        is one ``np.add.at`` per touched prefix — no Python-level work
        per packet.
        """
        timestamps = np.asarray(timestamps, dtype=np.float64)
        destinations = np.asarray(destinations, dtype=np.int64)
        wire_bytes = np.asarray(wire_bytes, dtype=np.int64)
        count = timestamps.size
        self.stats.packets_seen += count
        if count == 0:
            return 0
        if self._lpm is None or self._lpm_generation != self.table.generation:
            self._lpm = CompiledLpm.from_table(self.table)
            self._lpm_generation = self.table.generation

        in_axis = ((timestamps >= self.axis.start)
                   & (timestamps < self.axis.end))
        self.stats.packets_outside_axis += int((~in_axis).sum())
        rows = self._lpm.lookup(destinations)
        routed = rows != NO_ROUTE
        self.stats.packets_unrouted += int((in_axis & ~routed).sum())
        keep = in_axis & routed
        if not keep.any():
            return 0

        rows = rows[keep]
        sizes = wire_bytes[keep]
        stamps = timestamps[keep]
        slots = ((stamps - self.axis.start)
                 // self.axis.slot_seconds).astype(np.int64)
        unique, inverse = np.unique(rows, return_inverse=True)
        deltas = np.zeros((unique.size, self.axis.num_slots))
        np.add.at(deltas, (inverse, slots), sizes)
        packet_counts, byte_counts, first_seen, last_seen = \
            grouped_packet_stats(inverse, sizes, stamps, unique.size)

        for index, row in enumerate(unique.tolist()):
            prefix = self._lpm.prefixes[row]
            if prefix not in self._bytes:
                self._bytes[prefix] = np.zeros(self.axis.num_slots)
                self._records[prefix] = FlowRecord(prefix)
            self._bytes[prefix] += deltas[index]
            self._records[prefix].add_group(
                int(packet_counts[index]), int(byte_counts[index]),
                float(first_seen[index]), float(last_seen[index]),
            )

        matched = int(keep.sum())
        self.stats.packets_matched += matched
        self.stats.bytes_matched += int(sizes.sum())
        return matched

    def flow_records(self) -> list[FlowRecord]:
        """Per-flow accounting records, sorted by prefix."""
        return [self._records[p] for p in sorted(self._records)]

    def to_rate_matrix(self, include_all_routes: bool = False) -> RateMatrix:
        """Finish aggregation and emit the rate matrix (bits/second).

        With ``include_all_routes`` every RIB prefix gets a row (all-zero
        when it never received traffic), which matches the fluid
        simulator's convention of stable flow identity; otherwise only
        prefixes that actually received packets appear.
        """
        if include_all_routes:
            prefixes = self.table.prefixes()
        else:
            prefixes = sorted(self._bytes)
        if not prefixes:
            raise ClassificationError("no flows to build a matrix from")
        rates = np.zeros((len(prefixes), self.axis.num_slots))
        for row, prefix in enumerate(prefixes):
            counts = self._bytes.get(prefix)
            if counts is not None:
                rates[row, :] = counts * 8.0 / self.axis.slot_seconds
        return RateMatrix(list(prefixes), self.axis, rates)


def aggregate_pcap(path: str, table: RoutingTable, axis: TimeAxis,
                   vectorized: bool = True,
                   chunk_packets: int = 65536,
                   ) -> tuple[RateMatrix, AggregationStats]:
    """Read a pcap file and aggregate it into a rate matrix.

    The default path streams the capture through the pipeline's chunked
    columnar scan and bins each chunk with :meth:`FlowAggregator.add_batch`
    — memory stays bounded by ``chunk_packets`` however long the capture
    is. ``vectorized=False`` keeps the original packet-object loop (the
    reference semantics, also the strict path: it *raises* on non-IPv4
    frames where the scan counts them in ``stats.packets_skipped``).
    """
    aggregator = FlowAggregator(table, axis)
    if vectorized:
        # Imported here: repro.pipeline sits above the flows layer.
        from repro.pipeline.sources import PcapPacketSource
        source = PcapPacketSource(path, chunk_packets=chunk_packets)
        for batch in source.batches():
            aggregator.add_batch(batch.timestamps, batch.destinations,
                                 batch.wire_bytes)
            aggregator.stats.packets_seen += batch.packets_skipped
            aggregator.stats.packets_skipped += batch.packets_skipped
    else:
        with PcapReader.open(path) as reader:
            for record in reader:
                aggregator.add(summarize_record(record, reader.linktype))
    return aggregator.to_rate_matrix(), aggregator.stats
