"""Flow-record interchange in the floodns ``flow_info.csv`` shape.

The pipeline's native inputs are packet captures, but most operational
traffic data arrives as *flow records*: NetFlow exports, simulator
output, or another monitor's per-slot accounting. This module speaks
the floodns ``flow_info.csv`` column set (SNIPPETS.md snippet 2)::

    flow_id,source_node_id,dest_node_id,path,start_time,end_time,
    duration,amount_sent,average_bandwidth,metadata

Times are integer nanoseconds, ``amount_sent`` is in raw units (bytes
here), and ``average_bandwidth`` is Gbit/s — which for ns timestamps
is simply bits per nanosecond. ``duration`` and ``average_bandwidth``
are derived columns: they are recomputed on write and ignored on read,
so a write → read round trip reproduces the stored fields exactly
(the Hypothesis property suite asserts this, metadata included).

Three entry points:

- :func:`read_flow_records` / :func:`write_flow_records` — the record
  layer: lists of :class:`FlowInfoRecord`.
- :class:`FlowRecordSource` — a
  :class:`~repro.pipeline.sources.PacketSource` over a flow-record
  CSV: each record becomes one pre-aggregated "packet" row stamped at
  the record's start time, exactly like the NetFlow flow-records
  sampling mode emits, so a CSV can drive the streaming pipeline
  anywhere a pcap can.
- :func:`slot_flow_records` — the export side: one record per
  (flow, slot) from a classified
  :class:`~repro.pipeline.sources.SlotFrame`, which is what
  ``repro stream --flow-csv-out`` writes. Replaying such an export
  through :class:`FlowRecordSource` on the same slot grid reproduces
  the original run's per-slot elephants (asserted in the integration
  suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.errors import ClassificationError
from repro.net import ipv4

if TYPE_CHECKING:  # repro.pipeline sits above the flows layer
    from repro.pipeline.sources import PacketBatch, SlotFrame

#: Nanoseconds per second — the CSV's clock against the pipeline's.
NS_PER_SECOND = 1_000_000_000

#: Default rows per emitted batch (the pipeline's ingestion granule;
#: kept equal to ``repro.pipeline.sources.DEFAULT_CHUNK_PACKETS``).
DEFAULT_CHUNK_RECORDS = 65536

#: Column order of a ``flow_info.csv`` row.
FLOW_INFO_COLUMNS = (
    "flow_id",
    "source_node_id",
    "dest_node_id",
    "path",
    "start_time",
    "end_time",
    "duration",
    "amount_sent",
    "average_bandwidth",
    "metadata",
)


@dataclass(frozen=True)
class FlowInfoRecord:
    """One ``flow_info.csv`` row: a flow's lifetime byte accounting.

    ``start_time``/``end_time`` are integer nanoseconds (floodns
    convention — ns integers survive CSV exactly where float seconds
    would not), ``amount_sent`` is bytes. ``path`` and ``metadata``
    are free text minus the CSV structural characters; this repo's
    exports put the flow's prefix in ``metadata`` and leave ``path``
    empty.
    """

    flow_id: int
    source_node_id: int
    dest_node_id: int
    path: str
    start_time: int
    end_time: int
    amount_sent: int
    metadata: str = ""

    def __post_init__(self) -> None:
        if self.flow_id < 0:
            raise ClassificationError("flow_id must be >= 0")
        if self.source_node_id < 0 or self.dest_node_id < 0:
            raise ClassificationError("node ids must be >= 0")
        if self.end_time < self.start_time:
            raise ClassificationError(
                f"flow {self.flow_id}: end_time {self.end_time} before "
                f"start_time {self.start_time}"
            )
        if self.amount_sent < 0:
            raise ClassificationError("amount_sent must be >= 0")
        for label, text in (("path", self.path),
                            ("metadata", self.metadata)):
            if any(ch in text for ch in (",", "\n", "\r")):
                raise ClassificationError(
                    f"{label} must not contain commas or newlines: "
                    f"{text!r}"
                )

    @property
    def duration(self) -> int:
        """Flow duration in nanoseconds (derived)."""
        return self.end_time - self.start_time

    @property
    def average_bandwidth(self) -> float:
        """Average bandwidth in Gbit/s (bits per ns; derived).

        Zero-duration flows report 0.0 — floodns never emits them, but
        a single-packet export can.
        """
        if self.duration == 0:
            return 0.0
        return self.amount_sent * 8.0 / self.duration


def write_flow_records(
    path: str, records: Iterable[FlowInfoRecord]
) -> int:
    """Write ``records`` as a ``flow_info.csv`` file; returns the count.

    A header row naming the columns is written first (readers here and
    in floodns tooling skip it); ``duration`` and
    ``average_bandwidth`` are recomputed from the stored fields.
    """
    count = 0
    try:
        stream = open(path, "w")
    except OSError as exc:
        raise ClassificationError(
            f"cannot write flow records to {path!r}: {exc}"
        ) from exc
    with stream:
        stream.write(",".join(FLOW_INFO_COLUMNS) + "\n")
        for record in records:
            stream.write(
                f"{record.flow_id},{record.source_node_id},"
                f"{record.dest_node_id},{record.path},"
                f"{record.start_time},{record.end_time},"
                f"{record.duration},{record.amount_sent},"
                f"{record.average_bandwidth!r},{record.metadata}\n"
            )
            count += 1
    return count


def _parse_node(cell: str) -> int:
    """A node id: an integer, or a dotted quad from address-keyed
    exports."""
    cell = cell.strip()
    if "." in cell:
        return ipv4.parse_ipv4(cell)
    return int(cell)


def _parse_row(line: str, where: str) -> FlowInfoRecord:
    cells = line.split(",")
    if len(cells) != len(FLOW_INFO_COLUMNS):
        raise ClassificationError(
            f"{where}: flow_info row needs "
            f"{len(FLOW_INFO_COLUMNS)} columns, got {len(cells)}: "
            f"{line!r}"
        )
    try:
        return FlowInfoRecord(
            flow_id=int(cells[0]),
            source_node_id=_parse_node(cells[1]),
            dest_node_id=_parse_node(cells[2]),
            path=cells[3].strip(),
            start_time=int(cells[4]),
            end_time=int(cells[5]),
            # cells[6] (duration) and cells[8] (average_bandwidth) are
            # derived columns; recomputed, never trusted
            amount_sent=int(cells[7]),
            metadata=cells[9].strip(),
        )
    except ValueError as exc:
        raise ClassificationError(
            f"{where}: bad flow_info row {line!r}: {exc}"
        ) from exc


def _iter_rows(path: str) -> Iterator[FlowInfoRecord]:
    try:
        stream = open(path)
    except OSError as exc:
        raise ClassificationError(
            f"cannot read flow records {path!r}: {exc}"
        ) from exc
    with stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("flow_id"):
                continue
            yield _parse_row(line, f"{path}:{number}")


def read_flow_records(path: str) -> list[FlowInfoRecord]:
    """Read a ``flow_info.csv`` file back into records.

    The header row (if present) is skipped; derived columns are
    ignored in favour of recomputation, so
    ``read_flow_records(write_flow_records(...))`` is the identity on
    the stored fields.
    """
    return list(_iter_rows(path))


class FlowRecordSource:
    """A :class:`~repro.pipeline.sources.PacketSource` over a
    ``flow_info.csv`` export.

    Each record becomes one pre-aggregated packet row — timestamp
    ``start_time / 1e9`` seconds, destination ``dest_node_id``, size
    ``amount_sent`` — mirroring what the flow-records sampling mode
    emits from live captures. Rows are chunked like every other packet
    source, so memory stays bounded by ``chunk_packets`` however large
    the export is. Records must be sorted by ``start_time`` (floodns
    writes them that way; the aggregator requires time order).
    """

    def __init__(
        self, path: str, chunk_packets: int = DEFAULT_CHUNK_RECORDS
    ) -> None:
        if chunk_packets < 1:
            raise ClassificationError("chunk_packets must be >= 1")
        self.path = path
        self.chunk_packets = chunk_packets

    def batches(self) -> Iterator["PacketBatch"]:
        timestamps: list[float] = []
        sources: list[int] = []
        destinations: list[int] = []
        sizes: list[int] = []
        for record in _iter_rows(self.path):
            timestamps.append(record.start_time / NS_PER_SECOND)
            sources.append(record.source_node_id)
            destinations.append(record.dest_node_id)
            sizes.append(record.amount_sent)
            if len(timestamps) >= self.chunk_packets:
                yield self._build(
                    timestamps, sources, destinations, sizes
                )
                timestamps, sources = [], []
                destinations, sizes = [], []
        if timestamps:
            yield self._build(timestamps, sources, destinations, sizes)

    @staticmethod
    def _build(
        timestamps: list[float],
        sources: list[int],
        destinations: list[int],
        sizes: list[int],
    ) -> "PacketBatch":
        from repro.pipeline.sources import PacketBatch

        count = len(timestamps)
        return PacketBatch(
            timestamps=np.array(timestamps, dtype=np.float64),
            sources=np.array(sources, dtype=np.int64),
            destinations=np.array(destinations, dtype=np.int64),
            protocols=np.zeros(count, dtype=np.int64),
            wire_bytes=np.array(sizes, dtype=np.int64),
            packets_seen=count,
        )


def slot_flow_records(
    frame: "SlotFrame",
    slot_seconds: float,
    first_flow_id: int = 0,
) -> list[FlowInfoRecord]:
    """One record per active flow in a classified slot.

    The export convention behind ``repro stream --flow-csv-out``: a
    flow carrying traffic in a slot becomes one record spanning that
    slot, ``amount_sent = rate x slot / 8`` bytes (rounded),
    ``dest_node_id`` the prefix's network address, and the prefix text
    in ``metadata``. The residual accounting row of sketch-bounded
    frames is skipped — it is unattributable mass, not a flow; the
    exported file covers the *tracked* traffic only. Replaying the
    export through :class:`FlowRecordSource` on the same slot grid and
    flow granularity reproduces the per-slot rates (up to sub-byte
    rounding) and therefore the elephant verdicts.
    """
    start_ns = round(frame.start * NS_PER_SECOND)
    end_ns = start_ns + round(slot_seconds * NS_PER_SECOND)
    records = []
    for row in np.flatnonzero(frame.rates > 0.0).tolist():
        if row == frame.residual_row:
            continue
        prefix = frame.population[row]
        amount = round(float(frame.rates[row]) * slot_seconds / 8.0)
        records.append(
            FlowInfoRecord(
                flow_id=first_flow_id + len(records),
                source_node_id=0,
                dest_node_id=prefix.network,
                path="",
                start_time=start_ns,
                end_time=end_ns,
                amount_sent=amount,
                metadata=str(prefix),
            )
        )
    return records


__all__ = [
    "FLOW_INFO_COLUMNS",
    "FlowInfoRecord",
    "FlowRecordSource",
    "NS_PER_SECOND",
    "read_flow_records",
    "slot_flow_records",
    "write_flow_records",
]
