"""The Internet checksum (RFC 1071) used by IPv4, TCP and UDP headers.

Implemented over ``bytes`` with the standard fold-the-carries formulation.
The one's-complement sum is commutative and byte-order sensitive in the
usual network (big-endian) convention.
"""

from __future__ import annotations


def ones_complement_sum(data: bytes) -> int:
    """Return the 16-bit one's-complement sum of ``data``.

    Odd-length input is padded with a zero byte on the right, as RFC 1071
    specifies.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
    # Fold carries until the value fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """Compute the Internet checksum of ``data``.

    The result is the one's complement of the one's-complement sum,
    as a 16-bit integer ready to be stored in a header field.
    """
    return ones_complement_sum(data) ^ 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """Return ``True`` if ``data`` (checksum field included) verifies.

    A buffer whose embedded checksum is correct sums to ``0xFFFF``.
    """
    return ones_complement_sum(data) == 0xFFFF


def pseudo_header(source: int, destination: int, protocol: int,
                  length: int) -> bytes:
    """Build the IPv4 pseudo-header used by TCP/UDP checksums.

    ``source`` and ``destination`` are integer IPv4 addresses,
    ``protocol`` the IP protocol number, and ``length`` the transport
    segment length (header plus payload).
    """
    return bytes((
        (source >> 24) & 0xFF, (source >> 16) & 0xFF,
        (source >> 8) & 0xFF, source & 0xFF,
        (destination >> 24) & 0xFF, (destination >> 16) & 0xFF,
        (destination >> 8) & 0xFF, destination & 0xFF,
        0, protocol & 0xFF,
        (length >> 8) & 0xFF, length & 0xFF,
    ))
