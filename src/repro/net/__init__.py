"""Low-level IPv4 networking primitives (addresses, prefixes, checksums)."""

from repro.net.ipv4 import (
    ADDRESS_BITS,
    MAX_ADDRESS,
    format_ipv4,
    netmask,
    parse_ipv4,
)
from repro.net.prefix import DEFAULT_ROUTE, Prefix
from repro.net.checksum import internet_checksum, verify_checksum

__all__ = [
    "ADDRESS_BITS",
    "MAX_ADDRESS",
    "DEFAULT_ROUTE",
    "Prefix",
    "format_ipv4",
    "internet_checksum",
    "netmask",
    "parse_ipv4",
    "verify_checksum",
]
