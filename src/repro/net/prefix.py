"""The :class:`Prefix` type: an IPv4 CIDR network used as a flow key.

The paper aggregates traffic at the granularity of BGP destination network
prefixes, so prefixes are the primary flow identifiers throughout the
library. :class:`Prefix` is immutable, hashable, and totally ordered
(first by network address, then by length), which makes it usable as a
dict key and sortable for deterministic reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import AddressError
from repro.net import ipv4


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 network prefix ``network/length``.

    ``network`` must have all host bits zero; the constructor enforces
    this so that two logically equal prefixes always compare equal.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= ipv4.ADDRESS_BITS:
            raise AddressError(f"prefix length {self.length} out of range 0..32")
        if not 0 <= self.network <= ipv4.MAX_ADDRESS:
            raise AddressError(f"network {self.network!r} out of IPv4 range")
        if not ipv4.is_network_address(self.network, self.length):
            raise AddressError(
                f"{ipv4.format_ipv4(self.network)}/{self.length} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (or a bare address, meaning /32)."""
        text = text.strip()
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            if not len_text.isdigit():
                raise AddressError(f"bad prefix length in {text!r}")
            length = int(len_text)
        else:
            addr_text, length = text, ipv4.ADDRESS_BITS
        address = ipv4.parse_ipv4(addr_text)
        if not ipv4.is_network_address(address, length):
            raise AddressError(f"{text!r} has host bits set")
        return cls(address, length)

    @classmethod
    def from_host(cls, address: int, length: int) -> "Prefix":
        """Build the prefix of ``length`` bits containing ``address``."""
        return cls(ipv4.network_address(address, length), length)

    def __str__(self) -> str:
        return f"{ipv4.format_ipv4(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    @property
    def netmask(self) -> int:
        """Integer netmask of this prefix."""
        return ipv4.netmask(self.length)

    @property
    def broadcast(self) -> int:
        """Highest address covered by this prefix."""
        return ipv4.broadcast_address(self.network, self.length)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered (``2**(32-length)``)."""
        return 1 << (ipv4.ADDRESS_BITS - self.length)

    def contains_address(self, address: int) -> bool:
        """Return ``True`` if ``address`` falls inside this prefix."""
        return ipv4.network_address(address, self.length) == self.network

    def contains(self, other: "Prefix") -> bool:
        """Return ``True`` if ``other`` is equal to or more specific."""
        return (
            other.length >= self.length
            and ipv4.network_address(other.network, self.length) == self.network
        )

    def overlaps(self, other: "Prefix") -> bool:
        """Return ``True`` if the address ranges intersect at all."""
        return self.contains(other) or other.contains(self)

    def supernet(self, new_length: int | None = None) -> "Prefix":
        """Return the enclosing prefix of ``new_length`` (default one bit shorter)."""
        if new_length is None:
            new_length = self.length - 1
        if not 0 <= new_length <= self.length:
            raise AddressError(
                f"supernet length {new_length} invalid for /{self.length}"
            )
        return Prefix.from_host(self.network, new_length)

    def subnets(self) -> Iterator["Prefix"]:
        """Yield the two halves of this prefix (one bit longer each)."""
        if self.length >= ipv4.ADDRESS_BITS:
            raise AddressError("cannot subnet a /32")
        child_length = self.length + 1
        yield Prefix(self.network, child_length)
        yield Prefix(self.network | (1 << (ipv4.ADDRESS_BITS - child_length)),
                     child_length)

    def bit_at(self, position: int) -> int:
        """Bit ``position`` (from MSB) of the network address."""
        return ipv4.bit_at(self.network, position)


#: The default route, matching every address.
DEFAULT_ROUTE = Prefix(0, 0)
