"""IPv4 address primitives.

Addresses are represented as plain ``int`` values in ``[0, 2**32)`` so that
they can live in numpy arrays and be masked with bitwise arithmetic in hot
paths (longest-prefix match, aggregation). This module provides parsing,
formatting and mask helpers around that representation.
"""

from __future__ import annotations

from repro.errors import AddressError

#: Number of bits in an IPv4 address.
ADDRESS_BITS = 32

#: Largest representable IPv4 address as an integer (255.255.255.255).
MAX_ADDRESS = (1 << ADDRESS_BITS) - 1


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad ``text`` (e.g. ``"192.0.2.1"``) into an integer.

    Raises :class:`~repro.errors.AddressError` on malformed input. Leading
    zeros are accepted (``"010.0.0.1"`` is ``10.0.0.1``) to match the
    permissive behaviour of most measurement tooling.
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"expected four dotted octets, got {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet {octet} out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(address: int) -> str:
    """Format integer ``address`` as a dotted quad string."""
    if not 0 <= address <= MAX_ADDRESS:
        raise AddressError(f"address {address!r} out of IPv4 range")
    return ".".join(
        str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def netmask(prefix_length: int) -> int:
    """Return the integer netmask for ``prefix_length`` bits.

    ``netmask(24)`` is ``0xFFFFFF00``; ``netmask(0)`` is ``0``.
    """
    if not 0 <= prefix_length <= ADDRESS_BITS:
        raise AddressError(f"prefix length {prefix_length} out of range 0..32")
    if prefix_length == 0:
        return 0
    return (MAX_ADDRESS << (ADDRESS_BITS - prefix_length)) & MAX_ADDRESS


def hostmask(prefix_length: int) -> int:
    """Return the integer host mask (complement of the netmask)."""
    return netmask(prefix_length) ^ MAX_ADDRESS


def network_address(address: int, prefix_length: int) -> int:
    """Zero the host bits of ``address`` under ``prefix_length``."""
    return address & netmask(prefix_length)


def broadcast_address(address: int, prefix_length: int) -> int:
    """Set all host bits of ``address`` under ``prefix_length``."""
    return address | hostmask(prefix_length)


def is_network_address(address: int, prefix_length: int) -> bool:
    """Return ``True`` if ``address`` has no host bits set."""
    return address == network_address(address, prefix_length)


def bit_at(address: int, position: int) -> int:
    """Return bit ``position`` of ``address``, counting from the MSB.

    ``bit_at(x, 0)`` is the most significant bit. Used by the radix trie.
    """
    if not 0 <= position < ADDRESS_BITS:
        raise AddressError(f"bit position {position} out of range 0..31")
    return (address >> (ADDRESS_BITS - 1 - position)) & 1


def common_prefix_length(a: int, b: int, limit: int = ADDRESS_BITS) -> int:
    """Length of the longest common bit-prefix of ``a`` and ``b``.

    The result is capped at ``limit``. ``common_prefix_length(x, x)`` is
    ``limit``.
    """
    if not 0 <= limit <= ADDRESS_BITS:
        raise AddressError(f"limit {limit} out of range 0..32")
    diff = (a ^ b) & MAX_ADDRESS
    if diff == 0:
        return limit
    leading = ADDRESS_BITS - diff.bit_length()
    return min(leading, limit)


def random_host_in(network: int, prefix_length: int, rng) -> int:
    """Draw a uniformly random address inside ``network/prefix_length``.

    ``rng`` is a :class:`numpy.random.Generator` (or anything exposing
    ``integers``). For a /32 this returns the network address itself.
    """
    span = 1 << (ADDRESS_BITS - prefix_length)
    if span == 1:
        return network
    offset = int(rng.integers(0, span))
    return network_address(network, prefix_length) + offset
