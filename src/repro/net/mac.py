"""MAC (EUI-48) address helpers for the Ethernet codec.

MAC addresses are represented as 6-byte ``bytes`` objects on the wire and
as integers where arithmetic is convenient.
"""

from __future__ import annotations

from repro.errors import AddressError

#: Length of an EUI-48 address in bytes.
MAC_LENGTH = 6

#: The broadcast address ff:ff:ff:ff:ff:ff.
BROADCAST = b"\xff" * MAC_LENGTH


def parse_mac(text: str) -> bytes:
    """Parse ``"aa:bb:cc:dd:ee:ff"`` (or ``-`` separated) into 6 bytes."""
    cleaned = text.strip().replace("-", ":")
    parts = cleaned.split(":")
    if len(parts) != MAC_LENGTH:
        raise AddressError(f"expected six octets in MAC {text!r}")
    try:
        octets = bytes(int(part, 16) for part in parts)
    except ValueError as exc:
        raise AddressError(f"bad hex octet in MAC {text!r}") from exc
    if any(len(part) not in (1, 2) for part in parts):
        raise AddressError(f"bad octet width in MAC {text!r}")
    return octets


def format_mac(mac: bytes) -> str:
    """Format 6 raw bytes as lowercase colon-separated hex."""
    if len(mac) != MAC_LENGTH:
        raise AddressError(f"MAC must be {MAC_LENGTH} bytes, got {len(mac)}")
    return ":".join(f"{octet:02x}" for octet in mac)


def mac_from_int(value: int) -> bytes:
    """Convert an integer in ``[0, 2**48)`` to 6 raw bytes."""
    if not 0 <= value < (1 << 48):
        raise AddressError(f"MAC integer {value!r} out of range")
    return value.to_bytes(MAC_LENGTH, "big")


def mac_to_int(mac: bytes) -> int:
    """Convert 6 raw bytes to an integer."""
    if len(mac) != MAC_LENGTH:
        raise AddressError(f"MAC must be {MAC_LENGTH} bytes, got {len(mac)}")
    return int.from_bytes(mac, "big")


def is_multicast(mac: bytes) -> bool:
    """Return ``True`` if the group bit (LSB of first octet) is set."""
    if len(mac) != MAC_LENGTH:
        raise AddressError(f"MAC must be {MAC_LENGTH} bytes, got {len(mac)}")
    return bool(mac[0] & 0x01)
