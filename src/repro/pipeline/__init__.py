"""The streaming pipeline: source → aggregator → classifier.

This package makes slot-at-a-time processing the canonical execution
path. Packet sources stream columnar batches, the streaming aggregator
bins them into slot frames over a dynamically discovered flow
population, and the pipeline engine classifies each frame as it
completes — with memory bounded by O(flows × window), independent of
capture length. Batch execution is a thin wrapper: collect the stream
and you get exactly what the batch engine computes.
"""

from repro.pipeline.aggregator import (
    AggregatingSlotSource,
    PrefixResolver,
    StreamingAggregator,
)
from repro.pipeline.backends import (
    ADMISSION_NAMES,
    BACKEND_NAMES,
    RESIDUAL_PREFIX,
    SKETCH_ENGINES,
    AggregationBackend,
    ArrayCountMinAggregation,
    ArrayMisraGriesAggregation,
    ArraySketchAggregation,
    ArraySpaceSavingAggregation,
    CountMinAggregation,
    ExactAggregation,
    MisraGriesAggregation,
    SampleHoldAggregation,
    SketchAggregation,
    SketchSlotSource,
    SpaceSavingAggregation,
    capacity_for_budget,
    make_backend,
    parse_memory_budget,
)
from repro.pipeline.engine import (
    StreamCollector,
    StreamEvent,
    StreamingPipeline,
    classify_matrix_streaming,
    run_stream,
)
from repro.pipeline.sampling import (
    SAMPLING_MODES,
    UNSAMPLED,
    SampledPacketSource,
    SamplingSpec,
)
from repro.pipeline.sharded import ShardedAggregation, shard_of
from repro.pipeline.sources import (
    ArrayPacketSource,
    CsvPacketSource,
    MatrixSlotSource,
    PacketBatch,
    PacketSource,
    PcapPacketSource,
    ScenarioSlotSource,
    SlotFrame,
    SlotSource,
)
from repro.pipeline.spec import SOURCE_KINDS, PipelineSpec, SourceSpec

__all__ = [
    "ADMISSION_NAMES",
    "AggregatingSlotSource",
    "AggregationBackend",
    "ArrayCountMinAggregation",
    "ArrayMisraGriesAggregation",
    "ArrayPacketSource",
    "ArraySketchAggregation",
    "ArraySpaceSavingAggregation",
    "BACKEND_NAMES",
    "CountMinAggregation",
    "CsvPacketSource",
    "ExactAggregation",
    "MisraGriesAggregation",
    "RESIDUAL_PREFIX",
    "SKETCH_ENGINES",
    "SampleHoldAggregation",
    "ShardedAggregation",
    "shard_of",
    "SketchAggregation",
    "SketchSlotSource",
    "SpaceSavingAggregation",
    "capacity_for_budget",
    "make_backend",
    "parse_memory_budget",
    "MatrixSlotSource",
    "PacketBatch",
    "PacketSource",
    "PcapPacketSource",
    "PipelineSpec",
    "PrefixResolver",
    "SAMPLING_MODES",
    "SOURCE_KINDS",
    "SourceSpec",
    "SampledPacketSource",
    "SamplingSpec",
    "ScenarioSlotSource",
    "SlotFrame",
    "SlotSource",
    "StreamCollector",
    "StreamEvent",
    "StreamingAggregator",
    "StreamingPipeline",
    "UNSAMPLED",
    "classify_matrix_streaming",
    "run_stream",
]
