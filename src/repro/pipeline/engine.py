"""Pipeline tail: slot frames → online classification → results.

:class:`StreamingPipeline` drives a slot source through an
:class:`~repro.core.streaming.OnlineClassifier`, growing the classifier
as the source discovers flows, and keeps an incremental
:class:`~repro.analysis.elephants.ElephantSeries` so the paper's
per-slot metrics are available without ever materialising a rate
matrix. Memory is O(flows × window) — the north-star bound for
processing arbitrarily long captures.

:class:`StreamCollector` is the optional batch bridge: it records every
frame and verdict and reassembles the full
:class:`~repro.core.result.ClassificationResult`, padding early slots
with ``False``/zero rows for flows that had not yet appeared — which is
exactly how the batch engine sees them, so collected streaming runs are
bit-identical to batch runs (asserted in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.analysis.elephants import ElephantSeries, ElephantSeriesBuilder
from repro.core.engine import EngineConfig, Feature, Scheme, make_detector
from repro.core.result import ClassificationResult
from repro.core.smoothing import ThresholdSeries
from repro.core.streaming import OnlineClassifier, SlotVerdict
from repro.errors import ClassificationError
from repro.flows.matrix import RateMatrix
from repro.flows.records import TimeAxis
from repro.net.prefix import Prefix
from repro.pipeline.backends import AggregationBackend, SketchSlotSource
from repro.pipeline.sampling import UNSAMPLED, SamplingSpec
from repro.pipeline.sources import MatrixSlotSource, SlotFrame, SlotSource
from repro.pipeline.spec import PipelineSpec


@dataclass(frozen=True)
class StreamEvent:
    """One classified slot: the frame that arrived and its verdict."""

    frame: SlotFrame
    verdict: SlotVerdict

    @property
    def elephant_prefixes(self) -> list[Prefix]:
        """The prefixes classified as elephants in this slot."""
        return [
            self.frame.population[i]
            for i in self.verdict.elephants().tolist()
        ]


class StreamingPipeline:
    """source → classifier, one slot at a time, bounded state.

    The classifier is created on the first frame and grown whenever the
    population expands; a grown flow's state is backfilled as if it had
    been an all-zero row from the start, which keeps streaming verdicts
    identical to the batch classifiers'.

    ``backend`` optionally interposes a bounded aggregation backend
    between the source and the classifier (via
    :class:`~repro.pipeline.backends.SketchSlotSource`): frames are
    re-keyed to the backend's capacity-bounded population plus a
    residual row. Use it for slot-level inputs (matrix replays); packet
    inputs should pass the backend to the aggregator instead, where the
    bound applies before any per-flow state exists.

    ``spec`` configures both in one step: its backend bounds the source
    (unless an explicit ``backend`` is given) and its sampling policy
    sizes the variance guard. ``sampling`` alone sets just the guard —
    pass it when the aggregator upstream already applied the backend
    and the sampling mask. Frames carry their own ``sample_rate``; the
    guard only engages on frames that declare one above 1.
    """

    def __init__(
        self,
        source: SlotSource,
        scheme: Scheme = Scheme.CONSTANT_LOAD,
        feature: Feature = Feature.LATENT_HEAT,
        config: EngineConfig | None = None,
        backend: AggregationBackend | None = None,
        sampling: SamplingSpec | None = None,
        spec: PipelineSpec | None = None,
    ) -> None:
        if spec is not None:
            if spec.workers > 1:
                raise ClassificationError(
                    "spec.workers > 1 is multi-process ingestion; use "
                    "StreamingPipeline.parallel(..., spec=spec)"
                )
            if sampling is None:
                sampling = spec.sampling
            if backend is None:
                backend = spec.build_backend()
        self.sampling = sampling if sampling is not None else UNSAMPLED
        if backend is not None:
            source = SketchSlotSource(source, backend)
        self.source = source
        self.scheme = scheme
        self.feature = feature
        self.config = config or EngineConfig()
        self.config.validate()
        self.classifier: OnlineClassifier | None = None
        #: Fleet-wide ingestion stats when built by :meth:`parallel`.
        self.ingest_stats = None
        detector = make_detector(scheme, beta=self.config.beta)
        self._label = f"{detector.name} {feature.value}"
        self._builder = ElephantSeriesBuilder(
            label=self._label,
            slot_seconds=source.slot_seconds,
        )

    @classmethod
    def parallel(
        cls,
        packets,
        resolver,
        workers: int | None = None,
        slot_seconds: float = 60.0,
        backend: str = "exact",
        capacity: int | None = None,
        seed: int = 0,
        start: float | None = None,
        k: int | None = None,
        scheme: Scheme = Scheme.CONSTANT_LOAD,
        feature: Feature = Feature.LATENT_HEAT,
        config: EngineConfig | None = None,
        spec: PipelineSpec | None = None,
    ) -> "StreamingPipeline":
        """A pipeline fed by multi-process ingestion.

        Runs the capture through
        :func:`~repro.distributed.runner.parallel_ingest` — one reader
        process dealing packets to ``workers`` shard workers, each
        owning a slice of a ``make_backend(backend, shards=workers)``
        split — then returns a pipeline over the merged slot stream.
        Ingestion happens *here*, eagerly (the merged population must
        exist before classification); iterate :meth:`events` for the
        classification pass. Fleet-wide packet accounting lands in
        :attr:`ingest_stats`; the merged summaries are reachable as
        ``pipeline.source.merged``. The CLI's ``stream --workers``
        inlines this same ingest → collector sequence because it also
        needs the empty-capture exit-1 contract and the collector
        artefacts for ``--summary-out``.
        """
        # Imported lazily: repro.distributed sits above this module.
        from repro.distributed.runner import parallel_ingest

        ingest = parallel_ingest(
            packets,
            resolver,
            workers=workers,
            slot_seconds=slot_seconds,
            backend=backend,
            capacity=capacity,
            seed=seed,
            start=start,
            spec=spec,
        )
        collector = ingest.collector(
            k=k, scheme=scheme, feature=feature, config=config
        )
        pipeline = cls(
            collector.source(), scheme=scheme, feature=feature,
            config=config,
            sampling=spec.sampling if spec is not None else None,
        )
        pipeline.ingest_stats = ingest.stats
        return pipeline

    @property
    def label(self) -> str:
        """Run label, e.g. ``"0.8-constant-load latent-heat"``."""
        return self._label

    def events(self) -> Iterator[StreamEvent]:
        """Classify every slot the source produces, in order."""
        for frame in self.source.slots():
            yield self.observe(frame)

    def observe(self, frame: SlotFrame) -> StreamEvent:
        """Classify one frame (push mode).

        The pull path (:meth:`events`) drains ``source.slots()``; push
        mode is for callers that *produce* frames as external events
        happen — the live collector service seals a merged slot when
        every monitor has reported past it, then pushes it here.
        Frames must arrive in slot order, with populations that only
        ever grow; mixing :meth:`observe` and :meth:`events` on one
        pipeline double-classifies slots.
        """
        if self.classifier is None:
            self.classifier = OnlineClassifier(
                make_detector(self.scheme, beta=self.config.beta),
                num_flows=max(1, frame.num_flows),
                alpha=self.config.alpha,
                window=self.config.window,
                use_latent_heat=self.feature is Feature.LATENT_HEAT,
            )
        elif frame.num_flows > self.classifier.num_flows:
            self.classifier.grow(frame.num_flows)
        rates = frame.rates
        if rates.size < self.classifier.num_flows:
            padded = np.zeros(self.classifier.num_flows)
            padded[: rates.size] = rates
            rates = padded
        exclude = (
            np.array([frame.residual_row], dtype=np.int64)
            if frame.residual_row is not None
            else None
        )
        suppress = self._variance_guard(frame, rates)
        verdict = self.classifier.observe_slot(
            rates, exclude_rows=exclude, suppress_rows=suppress
        )
        self._builder.add_slot(
            rates, verdict.elephant_mask, residual_row=frame.residual_row
        )
        return StreamEvent(frame, verdict)

    def _variance_guard(self, frame: SlotFrame, rates: np.ndarray):
        """Rows with too little *sampled* evidence to trust this slot.

        Inverted rates are unbiased but high-variance for thin flows: a
        single lucky sampled packet from a mouse inflates to N packets'
        worth of apparent volume. Undo the inversion to recover the
        bytes actually observed and suppress the verdict for rows below
        the sampling spec's evidence floor (a few packets' worth). Only
        frames that declare ``sample_rate > 1`` are guarded.
        """
        rate = getattr(frame, "sample_rate", 1.0)
        if rate <= 1.0 or self.sampling.evidence_bytes <= 0:
            return None
        observed = rates * self.source.slot_seconds / (8.0 * rate)
        thin = (rates > 0.0) & (observed < self.sampling.evidence_bytes)
        if not thin.any():
            return None
        return np.flatnonzero(thin)

    def series(self) -> ElephantSeries:
        """The incremental Fig. 1(a)/(b) series over the slots seen."""
        return self._builder.build()

    @property
    def slots_seen(self) -> int:
        """Slots classified so far (push or pull)."""
        return self._builder.slots_seen


@dataclass
class StreamCollector:
    """Accumulate stream events back into batch-shaped artefacts.

    Only for callers that want the full result object; a pure streaming
    consumer should iterate events and keep nothing. Rows are padded to
    the final population, so memory is O(flows × slots).
    """

    _masks: list[np.ndarray] = field(default_factory=list)
    _rates: list[np.ndarray] = field(default_factory=list)
    _verdicts: list[SlotVerdict] = field(default_factory=list)
    _last_frame: SlotFrame | None = None
    _first_start: float | None = None

    def add(self, event: StreamEvent) -> None:
        """Record one event (call in slot order)."""
        if self._first_start is None:
            self._first_start = event.frame.start
        self._masks.append(event.verdict.elephant_mask)
        self._rates.append(event.frame.rates)
        self._verdicts.append(event.verdict)
        self._last_frame = event.frame

    def collect(self, events: Iterator[StreamEvent]) -> "StreamCollector":
        """Drain an event stream into this collector; returns self."""
        for event in events:
            self.add(event)
        return self

    @property
    def num_slots(self) -> int:
        """Slots recorded so far."""
        return len(self._masks)

    def matrix(self, slot_seconds: float) -> RateMatrix:
        """The rate matrix the stream traversed, padded to final size."""
        if self._last_frame is None:
            raise ClassificationError("no slots collected")
        prefixes = list(self._last_frame.population)
        if not prefixes:
            raise ClassificationError("stream discovered no flows")
        num_flows = len(prefixes)
        axis = TimeAxis(
            float(self._first_start), slot_seconds, self.num_slots
        )
        rates = np.zeros((num_flows, self.num_slots))
        for slot, column in enumerate(self._rates):
            rates[: column.size, slot] = column
        return RateMatrix(prefixes, axis, rates)

    def result(
        self,
        slot_seconds: float,
        classifier_name: str,
        scheme: str,
        alpha: float,
    ) -> ClassificationResult:
        """Reassemble the batch-identical classification result."""
        matrix = self.matrix(slot_seconds)
        mask = np.zeros((matrix.num_flows, self.num_slots), dtype=bool)
        for slot, column in enumerate(self._masks):
            mask[: column.size, slot] = column
        thresholds = ThresholdSeries.from_slots(
            [v.thresholds for v in self._verdicts],
            scheme=scheme,
            alpha=alpha,
        )
        return ClassificationResult(
            matrix=matrix,
            thresholds=thresholds,
            elephant_mask=mask,
            classifier=classifier_name,
        )


def run_stream(
    source: SlotSource,
    scheme: Scheme = Scheme.CONSTANT_LOAD,
    feature: Feature = Feature.LATENT_HEAT,
    config: EngineConfig | None = None,
    backend: AggregationBackend | None = None,
    spec: PipelineSpec | None = None,
) -> tuple[ClassificationResult, ElephantSeries]:
    """Run a slot source end to end and collect the batch-shaped result.

    The convenience entry point for "stream it, then analyse it": with
    the default (exact) backend the returned result equals what the
    batch engine computes on the equivalent matrix; with a sketch
    backend the result covers the bounded population plus the residual
    row.
    """
    config = config or EngineConfig()
    pipeline = StreamingPipeline(
        source, scheme=scheme, feature=feature, config=config,
        backend=backend, spec=spec,
    )
    collector = StreamCollector().collect(pipeline.events())
    detector = make_detector(scheme, beta=config.beta)
    result = collector.result(
        source.slot_seconds,
        classifier_name=feature.value,
        scheme=detector.name,
        alpha=config.alpha,
    )
    return result, pipeline.series()


def classify_matrix_streaming(
    matrix: RateMatrix,
    scheme: Scheme = Scheme.CONSTANT_LOAD,
    feature: Feature = Feature.LATENT_HEAT,
    config: EngineConfig | None = None,
    backend: AggregationBackend | None = None,
) -> ClassificationResult:
    """Classify a rate matrix through the streaming path.

    Batch-as-a-wrapper: the matrix replays column by column through the
    online classifier and the verdicts reassemble into the exact result
    the batch engine produces. A sketch ``backend`` bounds the tracked
    population, trading exactness for fixed memory.
    """
    result, _ = run_stream(
        MatrixSlotSource(matrix),
        scheme=scheme,
        feature=feature,
        config=config,
        backend=backend,
    )
    return result
