"""PipelineSpec: one validated description of a pipeline deployment.

Seven PRs of growth left pipeline configuration scattered across
keyword arguments — ``backend``/``capacity``/``memory_budget`` on one
layer, ``shards`` on another, ``workers``/``ring_slots`` on a third —
with the cross-field rules (shards vs workers, capacity vs budget,
exact vs sketch) re-checked ad hoc at each call site. This module
consolidates them: a :class:`PipelineSpec` is a frozen dataclass that
validates every cross-field constraint once, at construction, and the
entry points (``make_backend``, ``StreamingPipeline``,
``engine.run_streaming``, ``parallel_ingest``, the CLI) all accept one.
The old kwargs still work everywhere as thin shims over a spec.

The spec also carries the sampling policy
(:class:`~repro.pipeline.sampling.SamplingSpec`) and the Bloom
admission knobs, so a monitor's whole ingest configuration — what it
samples, what it admits, how it bounds memory, how it parallelises —
is one value that can be validated, logged, and shipped around.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace

from repro.errors import ClassificationError
from repro.pipeline.backends import (
    ADMISSION_NAMES,
    BACKEND_NAMES,
    SKETCH_ENGINES,
    AggregationBackend,
    capacity_for_budget,
    make_backend,
    parse_memory_budget,
)
from repro.pipeline.sampling import (
    UNSAMPLED,
    SamplingSpec,
)
from repro.pipeline.sources import (
    ArrayPacketSource,
    CsvPacketSource,
    PacketSource,
    PcapPacketSource,
)

#: Valid :attr:`SourceSpec.kind` values.
SOURCE_KINDS = ("pcap", "packet-csv", "flow-csv", "array")


@dataclass(frozen=True)
class SourceSpec:
    """One validated description of a pipeline's packet input.

    The same consolidation :class:`PipelineSpec` performed for the
    table/sampling knobs, applied to input selection: instead of each
    command sniffing paths and constructing
    :class:`~repro.pipeline.sources.PcapPacketSource` /
    :class:`~repro.pipeline.sources.CsvPacketSource` /
    :class:`~repro.flows.interchange.FlowRecordSource` ad hoc, a
    ``SourceSpec`` names the input once (``kind`` + ``path``, or
    in-memory arrays for ``kind="array"``) and :meth:`open` builds the
    source. Attach one to a spec (``PipelineSpec(source=...)``) and
    :meth:`PipelineSpec.open_source` opens it behind the spec's
    sampling front-end.

    Kinds:

    - ``pcap`` — a classic pcap capture file.
    - ``packet-csv`` — ``timestamp,destination,wire_bytes`` rows
      (:class:`~repro.pipeline.sources.CsvPacketSource`).
    - ``flow-csv`` — a floodns-shaped ``flow_info.csv`` flow-record
      export (:class:`~repro.flows.interchange.FlowRecordSource`).
    - ``array`` — in-memory parallel columns
      (:class:`~repro.pipeline.sources.ArrayPacketSource`).

    File kinds take ``path`` and nothing else; ``array`` takes the
    three columns and no path. ``chunk_packets`` bounds batch size for
    any kind (``None`` means the source default). The array columns
    are excluded from equality/hashing — two array specs are the same
    spec only if they are the same object's fields.
    """

    kind: str
    path: str | None = None
    timestamps: object = field(default=None, compare=False, repr=False)
    destinations: object = field(default=None, compare=False, repr=False)
    wire_bytes: object = field(default=None, compare=False, repr=False)
    chunk_packets: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in SOURCE_KINDS:
            raise ClassificationError(
                f"unknown source kind {self.kind!r}; expected one of "
                f"{', '.join(SOURCE_KINDS)}"
            )
        if self.chunk_packets is not None and self.chunk_packets < 1:
            raise ClassificationError("chunk_packets must be >= 1")
        arrays = (self.timestamps, self.destinations, self.wire_bytes)
        if self.kind == "array":
            if self.path is not None:
                raise ClassificationError(
                    "an array source takes columns, not a path"
                )
            if any(column is None for column in arrays):
                raise ClassificationError(
                    "an array source needs timestamps, destinations, "
                    "and wire_bytes columns"
                )
        else:
            if self.path is None:
                raise ClassificationError(
                    f"a {self.kind} source needs a path"
                )
            if any(column is not None for column in arrays):
                raise ClassificationError(
                    f"a {self.kind} source reads from its path; array "
                    "columns only apply to kind='array'"
                )

    @classmethod
    def from_path(
        cls, path: str, chunk_packets: int | None = None
    ) -> "SourceSpec":
        """Classify a capture path by shape.

        ``.csv`` files are sniffed by header: a ``flow_id`` header is
        a floodns flow-record export, anything else is the packet-csv
        shape. Every other extension is treated as pcap (the scanner
        validates the magic itself).
        """
        kind = "pcap"
        if path.endswith(".csv"):
            try:
                with open(path) as stream:
                    header = stream.readline()
            except OSError as exc:
                raise ClassificationError(
                    f"cannot read capture {path!r}: {exc}"
                ) from exc
            kind = (
                "flow-csv"
                if header.startswith("flow_id")
                else "packet-csv"
            )
        return cls(kind=kind, path=path, chunk_packets=chunk_packets)

    @classmethod
    def of_arrays(
        cls,
        timestamps,
        destinations,
        wire_bytes,
        chunk_packets: int | None = None,
    ) -> "SourceSpec":
        """An in-memory array source (tests, benches, replays)."""
        return cls(
            kind="array",
            timestamps=timestamps,
            destinations=destinations,
            wire_bytes=wire_bytes,
            chunk_packets=chunk_packets,
        )

    def open(self) -> PacketSource:
        """Build the packet source this spec describes (unsampled;
        :meth:`PipelineSpec.open_source` adds the sampling wrap)."""
        kwargs = (
            {}
            if self.chunk_packets is None
            else {"chunk_packets": self.chunk_packets}
        )
        if self.kind == "pcap":
            return PcapPacketSource(self.path, **kwargs)
        if self.kind == "packet-csv":
            return CsvPacketSource(self.path, **kwargs)
        if self.kind == "flow-csv":
            # Imported lazily: repro.flows sits below this package, so
            # the interchange module cannot be a module-level import
            # target here without risking a partial-init cycle.
            from repro.flows.interchange import FlowRecordSource

            return FlowRecordSource(self.path, **kwargs)
        return ArrayPacketSource(
            self.timestamps,
            self.destinations,
            self.wire_bytes,
            **kwargs,
        )

    def describe(self) -> dict[str, object]:
        """JSON-safe facts for result envelopes and logs."""
        facts: dict[str, object] = {"kind": self.kind}
        if self.path is not None:
            facts["path"] = self.path
        if self.kind == "array":
            facts["num_packets"] = int(
                getattr(self.timestamps, "size", None)
                or len(self.timestamps)
            )
        return facts


@dataclass(frozen=True)
class PipelineSpec:
    """Everything the ingest pipeline needs to configure itself.

    Cross-field rules enforced here (and nowhere else):

    - ``capacity`` and ``memory_budget`` are alternatives; give one.
    - the exact backend takes neither; sketch backends need one.
    - ``shards`` (one process, N tables) and ``workers`` (N processes)
      are alternatives; give one.
    - admission gating needs an array-engine sketch backend.

    ``memory_budget`` takes bytes or a ``"512k"``-style string; the
    budget → capacity split accounts for however many partitions the
    deployment has (shards or workers). ``ring_slots`` is the
    shared-memory ring depth per worker; ``None`` means the transport
    default.

    ``source`` optionally names the packet input (a
    :class:`SourceSpec`); :meth:`open_source` opens it behind the
    sampling front-end, so a spec can describe a deployment's whole
    ingest path end to end.
    """

    backend: str = "exact"
    engine: str = "array"
    capacity: int | None = None
    memory_budget: int | str | None = None
    shards: int = 1
    workers: int = 1
    ring_slots: int | None = None
    seed: int = 0
    sampling: SamplingSpec = field(default_factory=SamplingSpec)
    admission: str = "none"
    admission_threshold: float | None = None
    source: SourceSpec | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise ClassificationError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{', '.join(BACKEND_NAMES)}"
            )
        if self.engine not in SKETCH_ENGINES:
            raise ClassificationError(
                f"unknown sketch engine {self.engine!r}; expected one "
                f"of {', '.join(SKETCH_ENGINES)}"
            )
        if self.admission not in ADMISSION_NAMES:
            raise ClassificationError(
                f"unknown admission policy {self.admission!r}; "
                f"expected one of {', '.join(ADMISSION_NAMES)}"
            )
        if self.shards < 1:
            raise ClassificationError("shards must be >= 1")
        if self.workers < 1:
            raise ClassificationError("workers must be >= 1")
        if self.shards > 1 and self.workers > 1:
            raise ClassificationError(
                "--shards and --workers are alternatives: shards "
                "partition one process's flow table, workers shard "
                "across processes (each worker is one shard)"
            )
        if self.ring_slots is not None and self.ring_slots < 1:
            raise ClassificationError("ring_slots must be >= 1")
        if self.capacity is not None and self.memory_budget is not None:
            raise ClassificationError(
                "--capacity and --memory-budget are alternatives; "
                "give one"
            )
        if self.capacity is not None and self.capacity < 1:
            raise ClassificationError("capacity must be >= 1")
        bounded = (
            self.capacity is not None or self.memory_budget is not None
        )
        if self.backend == "exact" and bounded:
            raise ClassificationError(
                "the exact backend tracks every flow; --capacity only "
                "applies to sketch backends"
            )
        if self.backend != "exact" and not bounded:
            raise ClassificationError(
                f"backend {self.backend!r} needs --capacity or "
                "--memory-budget"
            )
        if self.admission != "none" and (
            self.engine != "array"
            or self.backend not in ("space-saving", "misra-gries", "count-min")
        ):
            raise ClassificationError(
                "admission gating needs an array-engine sketch backend"
            )
        if (
            self.admission_threshold is not None
            and self.admission_threshold < 0
        ):
            raise ClassificationError("admission threshold must be >= 0")
        if self.sampling is None:
            object.__setattr__(self, "sampling", UNSAMPLED)

    # -- derived views -------------------------------------------------

    @property
    def partitions(self) -> int:
        """Flow-table partitions the deployment runs (shards are
        in-process partitions, each worker process is one shard)."""
        return max(self.shards, self.workers)

    @property
    def budget_bytes(self) -> int | None:
        """The memory budget in bytes, parsed (``None`` when unset)."""
        if self.memory_budget is None:
            return None
        if isinstance(self.memory_budget, int):
            if self.memory_budget < 1:
                raise ClassificationError("memory budget must be positive")
            return self.memory_budget
        return parse_memory_budget(self.memory_budget)

    @property
    def resolved_capacity(self) -> int | None:
        """Tracked-flow bound after the budget → capacity split."""
        if self.capacity is not None:
            return self.capacity
        budget = self.budget_bytes
        if budget is None:
            return None
        return capacity_for_budget(
            self.backend, budget, shards=self.partitions
        )

    def replace(self, **changes) -> "PipelineSpec":
        """A copy with fields replaced (re-validated)."""
        return replace(self, **changes)

    # -- builders ------------------------------------------------------

    def build_backend(self) -> AggregationBackend | None:
        """The single-process flow-table backend this spec describes.

        Returns ``None`` for the plain exact table (the aggregator's
        default — callers pass it straight through). Worker processes
        build their own shard-sized backends instead; see
        ``parallel_ingest(spec=...)``.
        """
        if self.backend == "exact" and self.shards == 1:
            return None
        kwargs: dict = {}
        if self.admission != "none":
            kwargs["admission"] = self.admission
            if self.admission_threshold is not None:
                kwargs["admission_threshold"] = self.admission_threshold
        return make_backend(
            self.backend,
            capacity=self.resolved_capacity,
            seed=self.seed,
            shards=self.shards,
            engine=self.engine,
            **kwargs,
        )

    def wrap_source(self, source):
        """``source`` behind this spec's sampling front-end."""
        return self.sampling.wrap(source)

    def open_source(self):
        """Open :attr:`source` behind the sampling front-end.

        The one factory every entry point shares: the spec names the
        input (:class:`SourceSpec`) and the sampling policy, so a
        deployment's whole ingest path — what it reads, what it
        samples — opens from the spec alone. Raises when the spec
        carries no source; entry points that also accept a legacy
        positional path treat "both given" as an error (the same
        spec-vs-kwargs mixing rule the other fields follow).
        """
        if self.source is None:
            raise ClassificationError(
                "this spec names no input; construct it with "
                "source=SourceSpec(...) (e.g. SourceSpec.from_path)"
            )
        return self.wrap_source(self.source.open())

    def describe(self) -> dict[str, object]:
        """JSON-safe configuration facts for result envelopes.

        The stable, serialisable view of the spec that
        ``repro ... --json`` embeds under the envelope's ``"spec"``
        key: scalar fields verbatim, sampling flattened to its policy
        triple, the source as its :meth:`SourceSpec.describe` facts.
        """
        facts: dict[str, object] = {
            "backend": self.backend,
            "engine": self.engine,
            "capacity": self.resolved_capacity,
            "shards": self.shards,
            "workers": self.workers,
            "seed": self.seed,
            "sampling": {
                "rate": self.sampling.rate,
                "mode": self.sampling.mode,
                "invert": self.sampling.invert,
            },
            "admission": self.admission,
        }
        if self.source is not None:
            facts["source"] = self.source.describe()
        return facts

    # -- CLI glue ------------------------------------------------------

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "PipelineSpec":
        """Build a spec from a namespace parsed with
        :func:`repro.cli.add_pipeline_args` (missing attributes fall
        back to the field defaults, so partial parsers work)."""
        sampling = SamplingSpec(
            rate=getattr(args, "sample_rate", 1),
            mode=getattr(args, "sample_mode", "deterministic"),
            seed=getattr(args, "sample_seed", 0),
            invert=not getattr(args, "no_invert", False),
        )
        return cls(
            backend=getattr(args, "backend", "exact"),
            engine=getattr(args, "engine", "array"),
            capacity=getattr(args, "capacity", None),
            memory_budget=getattr(args, "memory_budget", None),
            shards=getattr(args, "shards", 1),
            workers=getattr(args, "workers", 1),
            ring_slots=getattr(args, "ring_slots", None),
            seed=getattr(args, "seed", 0),
            sampling=sampling,
            admission=getattr(args, "admission", None) or "none",
            admission_threshold=getattr(
                args, "admission_threshold", None
            ),
        )
