"""Packet sampling front-end with inversion correction.

Production line-rate monitors never observe full traffic: routers
export 1-in-N sampled packet streams (or NetFlow-style sampled flow
records), and the classifier downstream has to work from that partial
view. "High Speed Elephant Flow Detection Under Partial Information"
(PAPERS.md) is the template: sample, invert the byte counts by the
sampling probability so volume estimates stay unbiased, and guard the
per-flow verdicts against the variance the inversion amplifies.

:class:`SamplingSpec` describes the sampling policy; wrapping any
:class:`~repro.pipeline.sources.PacketSource` with
:meth:`SamplingSpec.wrap` yields a :class:`SampledPacketSource` whose
batches contain only the selected packets, with ``wire_bytes`` already
scaled by N (integer multiply — int64 columns stay int64, so sampled
batches travel the shared-memory ring unchanged). The applied scale
travels with every frame as ``SlotFrame.sample_rate`` and with every
wire summary as ``SlotSummary.sample_rate``, so a collector can merge
monitors running at different rates and keep the variance guard of the
coarsest one.

Three modes:

- ``deterministic`` — 1-in-N count-based selection on a global packet
  counter (the classic router implementation). ``seed`` picks the
  counter phase. Averaged over all N phases the inverted totals equal
  the true totals *exactly*, which the property suite asserts.
- ``probabilistic`` — i.i.d. per-packet coin flips with p = 1/N from a
  seeded generator; the textbook unbiased estimator.
- ``flow-records`` — deterministic 1-in-N selection followed by
  per-batch aggregation of surviving packets into one record per flow
  key, emulating a router exporting sampled flow records instead of
  packets. Record timestamps are the first sampled packet's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ClassificationError
from repro.pipeline.sources import PacketBatch, PacketSource

#: Valid ``SamplingSpec.mode`` values.
SAMPLING_MODES = ("deterministic", "probabilistic", "flow-records")

#: Default variance guard: a flow needs at least this many *sampled*
#: packets' worth of evidence in a slot before it can be called an
#: elephant (see :attr:`SamplingSpec.evidence_bytes`).
DEFAULT_GUARD_PACKETS = 2
#: Assumed mean packet size for the evidence floor, in bytes.
DEFAULT_GUARD_PACKET_BYTES = 1500.0


@dataclass(frozen=True)
class SamplingSpec:
    """Sampling policy for a monitor's packet front-end.

    ``rate`` is N in 1-in-N: 1 means unsampled. ``invert`` scales the
    surviving packets' bytes by N so downstream volume estimates are
    unbiased; disabling it leaves raw sampled counts (and stamps
    frames with ``sample_rate`` 1.0, i.e. "no correction applied").

    ``guard_packets`` x ``guard_packet_bytes`` is the evidence floor:
    when classifying a sampled stream, a flow whose *sampled* volume in
    a slot falls below this floor is suppressed from the elephant
    verdict (its threshold/EWMA bookkeeping still runs). One lucky
    sampled packet from a mouse inverts to N packets' worth of
    apparent volume; requiring a couple of real observations cuts
    those false elephants off cheaply.
    """

    rate: int = 1
    mode: str = "deterministic"
    seed: int = 0
    invert: bool = True
    guard_packets: int = DEFAULT_GUARD_PACKETS
    guard_packet_bytes: float = DEFAULT_GUARD_PACKET_BYTES

    def __post_init__(self) -> None:
        if int(self.rate) != self.rate or self.rate < 1:
            raise ClassificationError("sampling rate must be an integer >= 1")
        if self.mode not in SAMPLING_MODES:
            raise ClassificationError(
                f"unknown sampling mode {self.mode!r}; "
                f"choose from {', '.join(SAMPLING_MODES)}"
            )
        if self.guard_packets < 0:
            raise ClassificationError("guard_packets must be >= 0")
        if self.guard_packet_bytes <= 0:
            raise ClassificationError("guard_packet_bytes must be positive")

    @property
    def probability(self) -> float:
        """Per-packet selection probability p = 1/N."""
        return 1.0 / self.rate

    @property
    def applied_rate(self) -> float:
        """The inversion factor actually applied to byte counts.

        This is what frames and summaries carry as ``sample_rate``: N
        when inversion is on, else 1.0 (no correction was applied, so
        downstream must not assume one).
        """
        return float(self.rate) if self.invert else 1.0

    @property
    def evidence_bytes(self) -> float:
        """Variance-guard floor on a flow's *sampled* bytes per slot."""
        return self.guard_packets * self.guard_packet_bytes

    @property
    def is_null(self) -> bool:
        """True when wrapping a source would change nothing."""
        return self.rate == 1 and self.mode != "flow-records"

    def wrap(self, source: PacketSource) -> PacketSource:
        """The sampled view of ``source`` (or ``source`` itself when
        this spec is a no-op)."""
        if self.is_null:
            return source
        return SampledPacketSource(source, self)


#: The no-op policy: every packet observed, no correction.
UNSAMPLED = SamplingSpec()


def _aggregate_flow_records(batch: PacketBatch) -> PacketBatch:
    """Collapse a batch to one row per flow key, NetFlow-style.

    Bytes are summed per destination key; the record keeps the first
    sampled packet's timestamp, source, and protocol, and rows are
    emitted in first-appearance order so time stays monotone.
    """
    if batch.num_packets == 0:
        return batch
    _, first, inverse = np.unique(
        batch.destinations, return_index=True, return_inverse=True
    )
    volumes = np.zeros(first.size, dtype=batch.wire_bytes.dtype)
    np.add.at(volumes, inverse, batch.wire_bytes)
    order = np.argsort(first, kind="stable")
    first = first[order]
    return PacketBatch(
        timestamps=batch.timestamps[first],
        sources=batch.sources[first],
        destinations=batch.destinations[first],
        protocols=batch.protocols[first],
        wire_bytes=volumes[order],
        packets_seen=batch.packets_seen,
    )


class SampledPacketSource:
    """A :class:`PacketSource` showing the sampled view of another.

    Selection is a vectorized mask per batch; surviving rows are
    sliced out and (when ``spec.invert``) their ``wire_bytes`` are
    multiplied by N in the original integer dtype. Packets sampled
    away count toward each batch's ``packets_seen`` (they were scanned
    but produced no row), so conservation accounting downstream keeps
    working.

    Counters (reset at each ``batches()`` call): ``packets_offered``
    rows seen from the inner source, ``packets_selected`` rows kept,
    ``records_emitted`` rows yielded (differs from selected only in
    flow-records mode).
    """

    def __init__(self, source: PacketSource, spec: SamplingSpec) -> None:
        self.source = source
        self.spec = spec
        self.chunk_packets = getattr(source, "chunk_packets", None)
        self.packets_offered = 0
        self.packets_selected = 0
        self.records_emitted = 0

    @property
    def sample_rate(self) -> float:
        """The ``sample_rate`` frames built from this source carry."""
        return self.spec.applied_rate

    def _select(self, batch: PacketBatch, state: dict) -> np.ndarray:
        spec = self.spec
        n = batch.num_packets
        if spec.rate == 1:
            return np.ones(n, dtype=bool)
        if spec.mode == "probabilistic":
            return state["rng"].random(n) < spec.probability
        counter = state["counter"]
        mask = (counter + np.arange(n, dtype=np.int64)) % spec.rate == 0
        state["counter"] = (counter + n) % spec.rate
        return mask

    def batches(self) -> Iterator[PacketBatch]:
        spec = self.spec
        self.packets_offered = 0
        self.packets_selected = 0
        self.records_emitted = 0
        state = {
            "counter": spec.seed % spec.rate,
            "rng": np.random.default_rng(spec.seed),
        }
        for batch in self.source.batches():
            self.packets_offered += batch.num_packets
            mask = self._select(batch, state)
            if spec.rate > 1:
                wire = batch.wire_bytes[mask]
                if spec.invert:
                    wire = wire * spec.rate
                batch = PacketBatch(
                    timestamps=batch.timestamps[mask],
                    sources=batch.sources[mask],
                    destinations=batch.destinations[mask],
                    protocols=batch.protocols[mask],
                    wire_bytes=wire,
                    packets_seen=batch.packets_seen,
                )
            self.packets_selected += batch.num_packets
            if spec.mode == "flow-records":
                batch = _aggregate_flow_records(batch)
            self.records_emitted += batch.num_packets
            yield batch
