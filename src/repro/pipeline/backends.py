"""Pluggable aggregation backends: exact and bounded-memory sketches.

The streaming aggregator owes its O(flows) state to one design choice:
every prefix that ever carries a byte gets a row and a counter. On a
backbone capture with millions of active prefixes that choice *is* the
memory bill. This module makes the flow table a strategy object:

- :class:`ExactAggregation` keeps the original semantics — every flow
  tracked exactly, no residual, state O(distinct flows);
- the bounded backends cap the candidate table at ``capacity`` entries
  using a classic heavy-hitter summary (Space-Saving, Misra–Gries,
  Count-Min + candidate table, Sample-and-Hold). Bytes of untracked
  flows are conserved in a dedicated *residual row* (prefix
  ``0.0.0.0/0``, always row 0), so every emitted slot still sums to
  the traffic that arrived.

Every bounded summary ships in two engines. The **scalar** engine
(:class:`SketchAggregation` family) feeds the reference dict-and-heap
sketches in :mod:`repro.sketches` one key at a time — the semantics
oracle the property suite tests against. The **array** engine
(:class:`ArraySketchAggregation` family, the default) runs the same
summaries as flat struct-of-arrays candidate tables
(:mod:`repro.sketches.array_tables`) with one vectorized
probe/admit/evict pass per batch and per-slot accumulators held as
parallel arrays — no Python work per key on the hot path. For
single-key batches the engines agree exactly; for real batches the
array engine follows the tables' documented batch semantics and the
CI bench gates its throughput against the scalar baseline.

Row semantics under a sketch: a flow earns a stream row the first time
it is still tracked when a slot closes — surviving one slot boundary is
the admission test, so mice that bounce in and out of the summary
within a slot never inflate the population. Once assigned, a row is
permanent (the positional identity downstream classifiers depend on);
a flow evicted later keeps its row, its subsequent bytes simply fall
into the residual until it is re-admitted.

Backends also speak the slot altitude: :class:`SketchSlotSource`
filters any :class:`~repro.pipeline.sources.SlotSource` (for instance a
replayed matrix) through a backend, which is how
``engine.run_streaming`` applies a memory bound to recorded matrices.
"""

from __future__ import annotations

import abc
import heapq
import math
from typing import Callable, Iterator

import numpy as np

from repro.errors import ClassificationError
from repro.flows.records import FlowRecord
from repro.net.prefix import Prefix
from repro.pipeline.sources import SlotFrame, SlotSource
from repro.sketches.array_tables import (
    ArrayCountMin,
    ArrayMisraGries,
    ArraySpaceSaving,
    _KeyTable,
)
from repro.sketches.bloom import (
    DEFAULT_ADMISSION_THRESHOLD,
    DEFAULT_BLOOM_DECAY,
    DEFAULT_BLOOM_DEPTH,
    gated_table,
)
from repro.sketches.count_min import CountMinSketch
from repro.sketches.misra_gries import MisraGries
from repro.sketches.sample_hold import SampleAndHold
from repro.sketches.space_saving import SpaceSaving

#: The population entry that absorbs untracked ("other") traffic. A
#: *real* default-route flow (a 0.0.0.0/0 RIB entry, or
#: ``--prefix-length 0``) is folded into this row rather than given its
#: own — under a sketch the two are indistinguishable, and populations
#: must stay duplicate-free.
RESIDUAL_PREFIX = Prefix(0, 0)

#: Rough per-tracked-entry cost in bytes for the scalar engine: sketch
#: dict slot, pending slot accumulator, row map entry and FlowRecord,
#: amortised. The byte-budget sizing keeps using this conservative
#: number for both engines, so a budgeted deployment never under-buys.
TRACKED_ENTRY_BYTES = 320
#: Per-tracked-entry cost of the array engine's flat layout: key,
#: count, error, six pending-accumulator cells and the row cache at
#: 8 B each, plus a 4x open-addressing bucket index.
ARRAY_ENTRY_BYTES = 112
#: Extra Count-Min table cells per unit of capacity (width factor x
#: depth x 8-byte counters).
_CM_WIDTH_FACTOR = 4
_CM_DEPTH = 4

PrefixOf = Callable[[int], Prefix]


class AggregationBackend(abc.ABC):
    """Per-slot flow-table strategy behind the streaming aggregator.

    The aggregator feeds each slot's traffic through
    :meth:`accumulate` (integer flow keys, byte sizes, timestamps and a
    key → :class:`Prefix` resolver) and calls :meth:`close_slot` at
    every slot boundary to harvest the byte vector. ``prefixes`` is the
    live, append-only population — frames share it by reference, so row
    ``i`` means the same flow in every frame a run emits.
    """

    #: CLI / report name of the backend.
    name: str = "backend"
    #: Row absorbing untracked traffic (``None`` for exact backends).
    residual_row: int | None = None
    #: Tracked-flow bound (``None`` for unbounded/exact backends).
    capacity: int | None = None

    def __init__(self) -> None:
        self.prefixes: list[Prefix] = []
        self._records: list[FlowRecord] = []
        self._row_of: dict[int, int] = {}
        #: High-water mark of :attr:`tracked_flows` across the run.
        self.peak_tracked = 0
        #: Slots this backend has closed (backends are single-use).
        self.slots_closed = 0

    @property
    @abc.abstractmethod
    def tracked_flows(self) -> int:
        """Flows currently held in bounded state."""

    @abc.abstractmethod
    def accumulate(
        self,
        keys: np.ndarray,
        sizes: np.ndarray,
        timestamps: np.ndarray,
        prefix_of: PrefixOf,
    ) -> None:
        """Account one group of same-slot packets, keyed by flow."""

    @abc.abstractmethod
    def close_slot(self) -> np.ndarray:
        """Byte counts per stream row for the closing slot; resets it."""

    def flow_records(self) -> list[FlowRecord]:
        """Per-row accounting records (row order, residual included)."""
        return list(self._records)

    def row_keys(self) -> list[int]:
        """Flow keys in row order, excluding any residual row.

        ``row_keys()[i]`` is the integer flow key that owns row
        ``i + 1`` when the backend has a residual row, else row ``i``.
        Rows are assigned sequentially, so the list only ever grows;
        :class:`~repro.pipeline.sharded.ShardedAggregation` relies on
        this to map shard-local rows onto its merged population.
        """
        return list(self._row_of)

    @property
    def num_rows(self) -> int:
        """Rows in the emitted population (>= tracked for sketches)."""
        return len(self.prefixes)


class ExactAggregation(AggregationBackend):
    """The unbounded reference backend: every flow tracked exactly.

    This is the flow table the original ``StreamingAggregator``
    carried, extracted behind the backend interface: a prefix gets the
    next free row the first time it carries bytes and keeps it forever.
    Flow keys are resolver rows — dense small integers — so the
    key → row map is a flat vector and the open-slot accumulator grows
    geometrically, leaving no per-batch rebuild work on the hot path.
    """

    name = "exact"
    residual_row = None

    def __init__(self) -> None:
        super().__init__()
        self._open = np.zeros(0)
        self._key_row = np.full(0, -1, dtype=np.int64)
        # flat per-row lifetime accumulators; FlowRecord objects are
        # materialised on demand in flow_records(), never on the hot
        # path
        self._rec_packets = np.zeros(0, dtype=np.int64)
        self._rec_bytes = np.zeros(0)
        self._rec_first = np.full(0, np.inf)
        self._rec_last = np.full(0, -np.inf)

    @property
    def tracked_flows(self) -> int:
        return len(self.prefixes)

    def _grow_rows(self, population: int) -> None:
        """Grow every per-row array geometrically to ``population``."""
        size = self._open.size
        if population <= size:
            return
        grown = max(population, 2 * size)

        def extend(array: np.ndarray, fill, dtype=None) -> np.ndarray:
            out = np.full(grown, fill, dtype=dtype)
            out[:size] = array
            return out

        self._open = extend(self._open, 0.0)
        self._rec_packets = extend(self._rec_packets, 0, np.int64)
        self._rec_bytes = extend(self._rec_bytes, 0.0)
        self._rec_first = extend(self._rec_first, np.inf)
        self._rec_last = extend(self._rec_last, -np.inf)

    def accumulate(
        self,
        keys: np.ndarray,
        sizes: np.ndarray,
        timestamps: np.ndarray,
        prefix_of: PrefixOf,
    ) -> None:
        if keys.size == 0:
            return
        unique, first_index = np.unique(keys, return_index=True)
        top = int(unique[-1]) + 1
        size = self._key_row.size
        if top > size:
            grown = np.full(max(top, 2 * size), -1, dtype=np.int64)
            grown[:size] = self._key_row
            self._key_row = grown
        known = self._key_row[unique]
        new = known < 0
        if new.any():
            # Rows are assigned in first-traffic order (keys arrive
            # time-ordered within a slot group), so the numbering does
            # not depend on how the capture was chunked into batches.
            fresh = unique[new]
            arrival = np.argsort(first_index[new])
            for key in fresh[arrival].tolist():
                row = len(self.prefixes)
                self._row_of[key] = row
                self._key_row[key] = row
                self.prefixes.append(prefix_of(key))
        population = len(self.prefixes)
        self._grow_rows(population)
        rows = self._key_row[keys]
        np.add.at(self._open, rows, sizes)
        # lifetime accounting stays in the flat arrays: four ufunc.at
        # passes over the group instead of a Python loop per active row
        np.add.at(self._rec_packets, rows, 1)
        np.add.at(self._rec_bytes, rows, sizes)
        np.minimum.at(self._rec_first, rows, timestamps)
        np.maximum.at(self._rec_last, rows, timestamps)
        self.peak_tracked = max(self.peak_tracked, population)

    def close_slot(self) -> np.ndarray:
        # accumulate() keeps _open at least population-sized (growing
        # geometrically); the emitted vector covers exactly the rows
        population = len(self.prefixes)
        closed = self._open[:population].copy()
        self._open[:population] = 0.0
        self.slots_closed += 1
        return closed

    def flow_records(self) -> list[FlowRecord]:
        """Materialise per-row records from the flat accumulators.

        Each call builds a fresh snapshot; callers holding an earlier
        list do not see later traffic (the live-object behaviour of the
        scalar sketch backends is not part of the contract).
        """
        records: list[FlowRecord] = []
        for row, prefix in enumerate(self.prefixes):
            record = FlowRecord(prefix)
            packets = int(self._rec_packets[row])
            if packets:
                record.add_group(
                    packets,
                    int(self._rec_bytes[row]),
                    float(self._rec_first[row]),
                    float(self._rec_last[row]),
                )
            records.append(record)
        return records


class _PendingEntry:
    """Slot-local accumulator for one candidate flow."""

    __slots__ = ("bytes", "packets", "first", "last", "prefix")

    def __init__(self, prefix: Prefix) -> None:
        self.bytes = 0.0
        self.packets = 0
        self.first = math.inf
        self.last = -math.inf
        self.prefix = prefix

    def add(
        self, weight: float, packets: int, first: float, last: float
    ) -> None:
        self.bytes += weight
        self.packets += packets
        self.first = min(self.first, first)
        self.last = max(self.last, last)


class SketchAggregation(AggregationBackend):
    """Base for scalar bounded backends: sketch + residual bookkeeping.

    Subclasses provide the summary itself via :meth:`_offer` (feed one
    weighted key, report whether it is tracked afterwards) and
    :meth:`_tracked`. This class owns the slot-local candidate
    accounting, the prune-on-eviction step that keeps the candidate
    table at ``capacity``, and the row assignment at slot close. It is
    the reference implementation the array engine is tested against.
    """

    residual_row = 0

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ClassificationError("capacity must be >= 1")
        super().__init__()
        self.capacity = capacity
        self.prefixes = [RESIDUAL_PREFIX]
        self._records = [FlowRecord(RESIDUAL_PREFIX)]
        self._pending: dict[int, _PendingEntry] = {}
        self._residual = _PendingEntry(RESIDUAL_PREFIX)

    @abc.abstractmethod
    def _offer(self, key: int, weight: float) -> bool:
        """Feed one weighted key to the sketch; is it tracked now?"""

    @abc.abstractmethod
    def _tracked(self, key: int) -> bool:
        """Is ``key`` currently held by the sketch?"""

    def accumulate(
        self,
        keys: np.ndarray,
        sizes: np.ndarray,
        timestamps: np.ndarray,
        prefix_of: PrefixOf,
    ) -> None:
        if keys.size == 0:
            return
        unique, first_index, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        packets = np.bincount(inverse)
        weights = np.bincount(inverse, weights=sizes)
        first = np.full(unique.size, np.inf)
        np.minimum.at(first, inverse, timestamps)
        last = np.full(unique.size, -np.inf)
        np.maximum.at(last, inverse, timestamps)
        # Offer keys in first-traffic order: admission/eviction races
        # then resolve the way a per-packet monitor would, and row
        # assignment at slot close inherits the same chunk-independent
        # ordering the exact backend guarantees.
        for i in np.argsort(first_index).tolist():
            key = int(unique[i])
            weight = float(weights[i])
            group = (
                weight,
                int(packets[i]),
                float(first[i]),
                float(last[i]),
            )
            if self._offer(key, weight):
                entry = self._pending.get(key)
                if entry is None:
                    entry = _PendingEntry(prefix_of(key))
                    self._pending[key] = entry
                entry.add(*group)
            else:
                self._residual.add(*group)
        # Candidates evicted by later arrivals in this group fall back
        # to the residual — this prune is what bounds the slot-local
        # table at the sketch's capacity.
        evicted = [key for key in self._pending if not self._tracked(key)]
        for key in evicted:
            entry = self._pending.pop(key)
            self._residual.add(
                entry.bytes, entry.packets, entry.first, entry.last
            )
        self.peak_tracked = max(self.peak_tracked, self.tracked_flows)

    def close_slot(self) -> np.ndarray:
        attributed: list[tuple[int, _PendingEntry]] = []
        for key, entry in self._pending.items():
            if entry.prefix == RESIDUAL_PREFIX:
                # A tracked default route is indistinguishable from the
                # "other traffic" row; fold it in rather than emitting
                # a duplicate 0.0.0.0/0 population entry.
                self._residual.add(
                    entry.bytes, entry.packets, entry.first, entry.last
                )
                continue
            row = self._row_of.get(key)
            if row is None:
                row = len(self.prefixes)
                self._row_of[key] = row
                self.prefixes.append(entry.prefix)
                self._records.append(FlowRecord(entry.prefix))
            attributed.append((row, entry))
        vector = np.zeros(len(self.prefixes))
        for row, entry in attributed:
            vector[row] += entry.bytes
            self._records[row].add_group(
                entry.packets, int(entry.bytes), entry.first, entry.last
            )
        if self._residual.packets or self._residual.bytes:
            vector[self.residual_row] += self._residual.bytes
            self._records[self.residual_row].add_group(
                self._residual.packets,
                int(self._residual.bytes),
                self._residual.first,
                self._residual.last,
            )
        self._pending = {}
        self._residual = _PendingEntry(RESIDUAL_PREFIX)
        self.slots_closed += 1
        return vector


class SummaryGatedAggregation(SketchAggregation):
    """Sketches whose summary object *is* the membership test.

    Space-Saving, Misra–Gries and Sample-and-Hold all expose the same
    shape — ``update(key, weight)``, ``estimate(key)`` (positive iff
    tracked), ``len()`` — so the offer/tracked logic lives here once;
    subclasses only construct ``self._sketch``.
    """

    _sketch: SpaceSaving[int] | MisraGries[int] | SampleAndHold[int]

    @property
    def tracked_flows(self) -> int:
        return len(self._sketch)

    def _offer(self, key: int, weight: float) -> bool:
        self._sketch.update(key, weight)
        return self._sketch.estimate(key) > 0.0

    def _tracked(self, key: int) -> bool:
        return self._sketch.estimate(key) > 0.0


class SpaceSavingAggregation(SummaryGatedAggregation):
    """Space-Saving candidate table: overflow evicts the minimum count.

    Every newcomer is admitted (inheriting the victim's count), so the
    slot-close survival rule does the real gating: a mouse admitted and
    evicted within one slot never earns a row.
    """

    name = "space-saving"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._sketch = SpaceSaving(capacity)


class MisraGriesAggregation(SummaryGatedAggregation):
    """Misra–Gries counters: light newcomers decrement, heavy ones stay.

    Deterministic and admission-selective — a flow lighter than the
    current minimum counter is never tracked at all, so the candidate
    table churns less than Space-Saving's at equal capacity.
    """

    name = "misra-gries"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._sketch = MisraGries(capacity)


class CountMinAggregation(SketchAggregation):
    """Count-Min sketch + a ``capacity``-entry candidate heap.

    The sketch carries the frequency estimates; the candidate table
    admits a key when its estimate beats the current minimum candidate,
    found through a lazy min-heap (stale entries are discarded on peek,
    as in :class:`~repro.sketches.space_saving.SpaceSaving`) so each
    untracked key costs O(log capacity), not a table scan. Hash-based,
    so unlike the counter summaries it never forgets a flow's history —
    at the price of one-sided over-estimation.
    """

    name = "count-min"

    def __init__(
        self,
        capacity: int,
        seed: int = 0,
        width: int | None = None,
        depth: int = _CM_DEPTH,
    ) -> None:
        super().__init__(capacity)
        if width is None:
            width = max(16, _CM_WIDTH_FACTOR * capacity)
        self._sketch = CountMinSketch(width=width, depth=depth, seed=seed)
        self._candidates: dict[int, float] = {}
        self._heap: list[tuple[float, int]] = []

    @property
    def tracked_flows(self) -> int:
        return len(self._candidates)

    def _admit(self, key: int, estimate: float) -> None:
        self._candidates[key] = estimate
        heapq.heappush(self._heap, (estimate, key))
        # Stale entries (superseded estimates) accumulate faster than
        # peeks discard them on a stable candidate set; rebuild once
        # they dominate so heap memory stays O(capacity), not O(stream).
        if len(self._heap) > 4 * self.capacity:
            self._heap = [
                (value, tracked)
                for tracked, value in self._candidates.items()
            ]
            heapq.heapify(self._heap)

    def _peek_minimum(self) -> tuple[int, float]:
        """The current smallest candidate, skipping stale heap entries."""
        while self._heap:
            estimate, key = self._heap[0]
            if self._candidates.get(key) == estimate:
                return key, estimate
            heapq.heappop(self._heap)
        # Staleness drained the heap: rebuild from the live table.
        self._heap = [
            (value, key) for key, value in self._candidates.items()
        ]
        heapq.heapify(self._heap)
        estimate, key = self._heap[0]
        return key, estimate

    def _offer(self, key: int, weight: float) -> bool:
        self._sketch.update(key, weight)
        estimate = self._sketch.estimate(key)
        if key in self._candidates:
            self._admit(key, estimate)
            return True
        if len(self._candidates) < self.capacity:
            self._admit(key, estimate)
            return True
        minimum, minimum_estimate = self._peek_minimum()
        if estimate > minimum_estimate:
            del self._candidates[minimum]
            self._admit(key, estimate)
            return True
        return False

    def _tracked(self, key: int) -> bool:
        return key in self._candidates


class SampleHoldAggregation(SummaryGatedAggregation):
    """Sample-and-Hold: byte-sampled admission, exact counting after.

    ``sampling_probability`` is per byte; with the default ``1e-5`` a
    flow is caught after ~100 kB in expectation. Held flows are never
    evicted, so the candidate table fills monotonically up to
    ``capacity``. Admission draws the seeded RNG once per offer, so
    there is no order-free batch formulation — this backend has no
    array engine and always runs scalar.
    """

    name = "sample-hold"

    def __init__(
        self,
        capacity: int,
        sampling_probability: float = 1e-5,
        seed: int = 0,
    ) -> None:
        super().__init__(capacity)
        self._sketch = SampleAndHold(
            sampling_probability, seed=seed, max_entries=capacity
        )


class ArraySketchAggregation(AggregationBackend):
    """Array-engine bounded backend: batch kernels, flat accumulators.

    The candidate summary is an array table from
    :mod:`repro.sketches.array_tables`; all slot-local accounting —
    pending bytes, packets, first/last timestamps, activation order and
    the slot → row cache — lives in parallel ``capacity``-sized arrays
    indexed by table slot. ``accumulate`` aggregates the batch per
    unique key, hands the aggregate to the table's one-pass batch
    update, flushes evicted slots into the residual scalars, and adds
    the surviving contributions with pure array ops; the only Python
    loop left runs at slot close, over the slots that earned a row.

    Residual-row conservation, slot-close row admission and positional
    row identity match the scalar engine exactly; the property suite
    drives both engines packet-by-packet to pin the equivalence.
    """

    residual_row = 0

    def __init__(
        self,
        capacity: int,
        admission: str | None = None,
        admission_threshold: float = DEFAULT_ADMISSION_THRESHOLD,
        admission_width: int | None = None,
        admission_depth: int = DEFAULT_BLOOM_DEPTH,
        admission_decay: float = DEFAULT_BLOOM_DECAY,
        admission_seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ClassificationError("capacity must be >= 1")
        super().__init__()
        self.capacity = capacity
        self.prefixes = [RESIDUAL_PREFIX]
        self._records = [FlowRecord(RESIDUAL_PREFIX)]
        self._table = self._make_table(capacity)
        if admission in (None, "none"):
            self.admission = None
        elif admission == "bloom":
            self.admission = admission
            self._table = gated_table(
                self._table,
                threshold_bytes=admission_threshold,
                width=admission_width,
                depth=admission_depth,
                decay=admission_decay,
                seed=admission_seed,
            )
        else:
            raise ClassificationError(
                f"unknown admission policy {admission!r}; expected one "
                f"of {', '.join(ADMISSION_NAMES)}"
            )
        self._pend_bytes = np.zeros(capacity)
        self._pend_packets = np.zeros(capacity, dtype=np.int64)
        self._pend_first = np.full(capacity, np.inf)
        self._pend_last = np.full(capacity, -np.inf)
        self._pend_active = np.zeros(capacity, dtype=bool)
        self._pend_seq = np.zeros(capacity, dtype=np.int64)
        self._slot_row = np.full(capacity, -1, dtype=np.int64)
        self._seq = 0
        self._res_bytes = 0.0
        self._res_packets = 0
        self._res_first = math.inf
        self._res_last = -math.inf
        self._resolve: PrefixOf | None = None

    @abc.abstractmethod
    def _make_table(self, capacity: int) -> _KeyTable:
        """Build the array candidate table for this summary."""

    @property
    def tracked_flows(self) -> int:
        return len(self._table)

    @property
    def admission_rejected_bytes(self) -> float:
        """Bytes turned away by the admission gate (0 without one)."""
        return float(getattr(self._table, "rejected_weight", 0.0))

    def accumulate(
        self,
        keys: np.ndarray,
        sizes: np.ndarray,
        timestamps: np.ndarray,
        prefix_of: PrefixOf,
    ) -> None:
        if keys.size == 0:
            return
        self._resolve = prefix_of
        # Group the batch per unique key with one stable sort plus
        # reduceat passes — the same aggregates np.unique + bincount +
        # ufunc.at produce, at roughly half the cost.
        count = keys.size
        sort_idx = np.argsort(keys, kind="stable")
        sorted_keys = keys[sort_idx]
        fresh = np.empty(count, dtype=bool)
        fresh[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=fresh[1:])
        starts = np.flatnonzero(fresh)
        unique = sorted_keys[starts]
        first_index = sort_idx[starts]
        weights = np.add.reduceat(
            np.asarray(sizes, dtype=np.float64)[sort_idx], starts
        )
        packets = np.empty(starts.size, dtype=np.int64)
        packets[:-1] = starts[1:] - starts[:-1]
        packets[-1] = count - starts[-1]
        sorted_times = timestamps[sort_idx]
        first = np.minimum.reduceat(sorted_times, starts)
        last = np.maximum.reduceat(sorted_times, starts)
        order = np.argsort(first_index)
        update = self._table.update_batch(unique, weights, order)
        self._flush_evicted(update.evicted)
        slots = update.slots
        tracked = slots >= 0
        if not tracked.all():
            gone = ~tracked
            self._residual_add(
                float(weights[gone].sum()),
                int(packets[gone].sum()),
                float(first[gone].min()),
                float(last[gone].max()),
            )
        if tracked.any():
            spots = slots[tracked]
            self._pend_bytes[spots] += weights[tracked]
            self._pend_packets[spots] += packets[tracked]
            self._pend_first[spots] = np.minimum(
                self._pend_first[spots], first[tracked]
            )
            self._pend_last[spots] = np.maximum(
                self._pend_last[spots], last[tracked]
            )
            # Activation order follows first-traffic order, mirroring
            # the scalar engine's pending-dict insertion order, so row
            # numbering at slot close is engine-independent.
            offers = order[tracked[order]]
            ospots = slots[offers]
            fresh = ospots[~self._pend_active[ospots]]
            if fresh.size:
                self._pend_seq[fresh] = self._seq + np.arange(fresh.size)
                self._seq += fresh.size
                self._pend_active[fresh] = True
        self.peak_tracked = max(self.peak_tracked, len(self._table))

    def _residual_add(
        self, weight: float, packets: int, first: float, last: float
    ) -> None:
        self._res_bytes += weight
        self._res_packets += packets
        self._res_first = min(self._res_first, first)
        self._res_last = max(self._res_last, last)

    def _flush_evicted(self, evicted: np.ndarray) -> None:
        """Evicted slots spill their pending accounting to residual."""
        if evicted.size == 0:
            return
        self._slot_row[evicted] = -1
        live = evicted[self._pend_active[evicted]]
        if live.size:
            self._residual_add(
                float(self._pend_bytes[live].sum()),
                int(self._pend_packets[live].sum()),
                float(self._pend_first[live].min()),
                float(self._pend_last[live].max()),
            )
            self._reset_pending(live)

    def _reset_pending(self, spots: np.ndarray) -> None:
        self._pend_bytes[spots] = 0.0
        self._pend_packets[spots] = 0
        self._pend_first[spots] = np.inf
        self._pend_last[spots] = -np.inf
        self._pend_active[spots] = False

    def close_slot(self) -> np.ndarray:
        active = np.flatnonzero(self._pend_active)
        active = active[np.argsort(self._pend_seq[active])]
        rows: list[int] = []
        kept: list[int] = []
        for spot in active.tolist():
            row = int(self._slot_row[spot])
            if row < 0:
                key = int(self._table.key[spot])
                cached = self._row_of.get(key)
                if cached is None:
                    assert self._resolve is not None
                    prefix = self._resolve(key)
                    if prefix == RESIDUAL_PREFIX:
                        # A tracked default route folds into the
                        # residual row; see the scalar engine.
                        self._residual_add(
                            float(self._pend_bytes[spot]),
                            int(self._pend_packets[spot]),
                            float(self._pend_first[spot]),
                            float(self._pend_last[spot]),
                        )
                        continue
                    row = len(self.prefixes)
                    self._row_of[key] = row
                    self.prefixes.append(prefix)
                    self._records.append(FlowRecord(prefix))
                else:
                    row = cached
                self._slot_row[spot] = row
            rows.append(row)
            kept.append(spot)
        vector = np.zeros(len(self.prefixes))
        for row, spot in zip(rows, kept):
            vector[row] += self._pend_bytes[spot]
            self._records[row].add_group(
                int(self._pend_packets[spot]),
                int(self._pend_bytes[spot]),
                float(self._pend_first[spot]),
                float(self._pend_last[spot]),
            )
        if self._res_packets or self._res_bytes:
            vector[self.residual_row] += self._res_bytes
            self._records[self.residual_row].add_group(
                self._res_packets,
                int(self._res_bytes),
                self._res_first,
                self._res_last,
            )
            self._res_bytes = 0.0
            self._res_packets = 0
            self._res_first = math.inf
            self._res_last = -math.inf
        if active.size:
            self._reset_pending(active)
        end_slot = getattr(self._table, "end_slot", None)
        if end_slot is not None:
            # slot-boundary hook — the Bloom admission gate ages its
            # counters here so the threshold tracks recent bytes
            end_slot()
        self.slots_closed += 1
        return vector


class ArraySpaceSavingAggregation(ArraySketchAggregation):
    """Array-engine Space-Saving (see :class:`SpaceSavingAggregation`)."""

    name = "space-saving"

    def _make_table(self, capacity: int) -> _KeyTable:
        return ArraySpaceSaving(capacity)


class ArrayMisraGriesAggregation(ArraySketchAggregation):
    """Array-engine Misra–Gries (see :class:`MisraGriesAggregation`)."""

    name = "misra-gries"

    def _make_table(self, capacity: int) -> _KeyTable:
        return ArrayMisraGries(capacity)


class ArrayCountMinAggregation(ArraySketchAggregation):
    """Array-engine Count-Min (see :class:`CountMinAggregation`)."""

    name = "count-min"

    def __init__(
        self,
        capacity: int,
        seed: int = 0,
        width: int | None = None,
        depth: int = _CM_DEPTH,
        **admission,
    ) -> None:
        if width is None:
            width = max(16, _CM_WIDTH_FACTOR * capacity)
        self._cm_params = (width, depth, seed)
        super().__init__(capacity, **admission)

    def _make_table(self, capacity: int) -> _KeyTable:
        width, depth, seed = self._cm_params
        return ArrayCountMin(capacity, width=width, depth=depth, seed=seed)


class SketchSlotSource:
    """Filter a slot source through a backend: bounded frames out.

    Adapts the backend to the slot altitude: each incoming frame's
    per-row byte volumes are offered to the backend keyed by source row
    (which must be positionally stable, as every repo slot source is),
    and the re-emitted frame covers the backend's population plus the
    residual. This is how a recorded matrix replays under a memory
    bound without touching the packet layer.
    """

    def __init__(
        self, source: SlotSource, backend: AggregationBackend
    ) -> None:
        self.source = source
        self.backend = backend
        self.slot_seconds = source.slot_seconds

    def slots(self) -> Iterator[SlotFrame]:
        seconds = self.slot_seconds
        for frame in self.source.slots():
            volumes = frame.rates * seconds / 8.0
            active = np.flatnonzero(volumes > 0)
            population = frame.population
            if active.size:
                self.backend.accumulate(
                    active,
                    volumes[active],
                    np.full(active.size, frame.start),
                    lambda key: population[key],
                )
            closed = self.backend.close_slot()
            yield SlotFrame(
                slot=frame.slot,
                start=frame.start,
                rates=closed * 8.0 / seconds,
                population=self.backend.prefixes,
                residual_row=self.backend.residual_row,
            )


#: CLI names accepted by :func:`make_backend`, which holds the actual
#: name → class mapping.
BACKEND_NAMES = (
    "exact",
    "space-saving",
    "misra-gries",
    "count-min",
    "sample-hold",
)

#: Sketch execution engines accepted by :func:`make_backend`.
SKETCH_ENGINES = ("array", "scalar")

#: Admission policies accepted by :func:`make_backend`. ``"bloom"``
#: puts a counting-Bloom byte-threshold gate in front of the array
#: candidate tables (:mod:`repro.sketches.bloom`).
ADMISSION_NAMES = ("none", "bloom")

_SCALAR_CLASSES: dict[str, type[AggregationBackend]] = {
    "space-saving": SpaceSavingAggregation,
    "misra-gries": MisraGriesAggregation,
    "count-min": CountMinAggregation,
    "sample-hold": SampleHoldAggregation,
}

#: Array-engine counterparts; sample-hold is inherently sequential
#: (one RNG draw per offer) and always runs on the scalar engine.
_ARRAY_CLASSES: dict[str, type[AggregationBackend]] = {
    "space-saving": ArraySpaceSavingAggregation,
    "misra-gries": ArrayMisraGriesAggregation,
    "count-min": ArrayCountMinAggregation,
}


def make_backend(
    name: str,
    capacity: int | None = None,
    seed: int = 0,
    shards: int = 1,
    engine: str = "array",
    admission: str | None = None,
    **kwargs,
) -> AggregationBackend:
    """Build a backend by CLI name.

    ``exact`` takes no capacity; every sketch backend requires one.
    Extra keyword arguments go to the backend constructor (for example
    ``sampling_probability`` for ``sample-hold``, or the
    ``admission_*`` tuning knobs of the Bloom gate).

    ``engine`` selects the sketch execution engine: ``"array"`` (the
    default) runs the vectorized candidate tables, ``"scalar"`` the
    dict-and-heap reference path. ``sample-hold`` always runs scalar;
    ``exact`` ignores the engine (its one implementation is already
    vectorized).

    ``admission`` selects the candidate-admission pre-filter:
    ``"bloom"`` gates entry to the (array-engine) candidate table on a
    counting-Bloom byte threshold, so tail flows stop churning the
    table. Only the array engine's sketch backends support it.

    ``shards > 1`` wraps ``shards`` inner backends of the same spec in
    a :class:`~repro.pipeline.sharded.ShardedAggregation`. ``capacity``
    stays the *total* tracked-flow bound: each shard gets
    ``ceil(capacity / shards)`` entries, so a sharded run never holds
    more than one extra entry per shard beyond the requested K.
    """
    if engine not in SKETCH_ENGINES:
        raise ClassificationError(
            f"unknown sketch engine {engine!r}; expected one of "
            f"{', '.join(SKETCH_ENGINES)}"
        )
    if shards < 1:
        raise ClassificationError("shards must be >= 1")
    if admission is not None and admission not in ADMISSION_NAMES:
        raise ClassificationError(
            f"unknown admission policy {admission!r}; expected one of "
            f"{', '.join(ADMISSION_NAMES)}"
        )
    if admission == "none":
        admission = None
    if admission is not None:
        if engine != "array" or name not in _ARRAY_CLASSES:
            raise ClassificationError(
                "admission gating needs an array-engine sketch "
                f"backend ({', '.join(sorted(_ARRAY_CLASSES))}); "
                f"got {name!r} on the {engine!r} engine"
            )
        kwargs.setdefault("admission_seed", seed)
        kwargs["admission"] = admission
    if shards > 1:
        # imported here: sharded sits above this module
        from repro.pipeline.sharded import ShardedAggregation

        if name == "exact":
            if capacity is not None:
                raise ClassificationError(
                    "the exact backend tracks every flow; --capacity "
                    "only applies to sketch backends"
                )
            inners: list[AggregationBackend] = [
                ExactAggregation(**kwargs) for _ in range(shards)
            ]
        else:
            if capacity is None:
                raise ClassificationError(
                    f"backend {name!r} needs --capacity or "
                    "--memory-budget"
                )
            if capacity < 1:
                raise ClassificationError("capacity must be >= 1")
            per_shard = -(-capacity // shards)
            # distinct seeds decorrelate the hash-based shards' errors
            inners = [
                make_backend(
                    name,
                    capacity=per_shard,
                    seed=seed + i,
                    engine=engine,
                    **kwargs,
                )
                for i in range(shards)
            ]
        return ShardedAggregation(inners)
    if name == "exact":
        if capacity is not None:
            raise ClassificationError(
                "the exact backend tracks every flow; --capacity only "
                "applies to sketch backends"
            )
        return ExactAggregation(**kwargs)
    classes = dict(_SCALAR_CLASSES)
    if engine == "array":
        classes.update(_ARRAY_CLASSES)
    if name not in classes:
        raise ClassificationError(
            f"unknown backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}"
        )
    if capacity is None:
        raise ClassificationError(
            f"backend {name!r} needs --capacity or --memory-budget"
        )
    if capacity < 1:
        raise ClassificationError("capacity must be >= 1")
    if name in ("count-min", "sample-hold"):
        kwargs.setdefault("seed", seed)
    return classes[name](capacity, **kwargs)


def parse_memory_budget(text: str) -> int:
    """Parse ``"512k"``/``"8m"``/``"1g"``/plain-byte budget strings."""
    text = text.strip().lower()
    multiplier = 1
    if text and text[-1] in "kmg":
        multiplier = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}[text[-1]]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise ClassificationError(
            f"bad memory budget {text!r}; use bytes or k/m/g suffixes"
        ) from None
    if value < 1:
        raise ClassificationError("memory budget must be positive")
    return value * multiplier


def capacity_for_budget(
    name: str, budget_bytes: int, shards: int = 1
) -> int:
    """Convert a byte budget into a tracked-flow capacity for ``name``.

    Uses the coarse :data:`TRACKED_ENTRY_BYTES` cost model; Count-Min
    additionally pays for its counter table, which scales with capacity
    through the default width factor. The array engine's flat layout
    costs less (:data:`ARRAY_ENTRY_BYTES` per entry), so a budget sized
    here is an upper bound under either engine.

    ``shards`` sizes a sharded deployment: the budget buys ``shards``
    tables of ``K / shards`` entries each, and the returned capacity is
    the total across shards — so a budgeted sharded run occupies the
    same memory as a single-table run, not ``shards`` times it.
    """
    if name == "exact":
        raise ClassificationError(
            "the exact backend has no memory bound to budget; "
            "pick a sketch backend"
        )
    if shards < 1:
        raise ClassificationError("shards must be >= 1")
    per_entry = TRACKED_ENTRY_BYTES
    if name == "count-min":
        per_entry += _CM_WIDTH_FACTOR * _CM_DEPTH * 8
    per_shard = (budget_bytes // shards) // per_entry
    if per_shard < 1:
        raise ClassificationError(
            f"memory budget {budget_bytes} B across {shards} shard(s) "
            f"is below one tracked entry (~{per_entry} B) for backend "
            f"{name!r}"
        )
    return int(per_shard * shards)
