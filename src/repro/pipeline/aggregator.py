"""Streaming aggregation: packet batches → completed slot frames.

This is the pipeline's middle stage. It consumes the columnar batches a
:class:`~repro.pipeline.sources.PacketSource` produces and emits one
:class:`~repro.pipeline.sources.SlotFrame` per measurement slot, as
soon as the slot is known to be complete (i.e. a later packet arrives).
Unlike the batch :class:`~repro.flows.aggregate.FlowAggregator`, it
needs no time axis up front and no fixed flow population:

- the axis grows forward from the first packet's slot (aligned to the
  ``slot_seconds`` grid), one slot at a time, for as long as the
  capture runs;
- flows are discovered from the traffic, through a pluggable
  :class:`~repro.pipeline.backends.AggregationBackend`. The default
  exact backend gives every prefix its own permanent row the first
  time it carries bytes; sketch backends bound the tracked table at a
  fixed capacity and conserve untracked bytes in a residual row, with
  the array engine (the default) running the per-batch accounting as
  vectorized kernels end to end.

State is one open slot's accounting plus the backend's flow table —
O(flows) for exact, O(capacity) *tracked* state for sketches. Sketch
rows are permanent once earned, so the emitted population still grows
with candidate churn across slot boundaries (row compaction is a
ROADMAP item); the bounded part is the sketch and the per-slot
candidate table. Packets must arrive in non-decreasing slot order
(pcap files are chronological); a packet for an already-emitted slot is
counted in ``stats.packets_outside_axis`` and dropped, which is what a
one-pass monitor has to do.
"""

from __future__ import annotations

import math
from typing import Iterator, Protocol, Sequence

import numpy as np

from repro.errors import ClassificationError
from repro.flows.aggregate import AggregationStats
from repro.flows.records import (
    DEFAULT_SLOT_SECONDS,
    FlowRecord,
    TimeAxis,
)
from repro.net.prefix import Prefix
from repro.pipeline.backends import (
    AggregationBackend,
    ExactAggregation,
    make_backend,
)
from repro.pipeline.sources import PacketBatch, PacketSource, SlotFrame
from repro.routing.lpm import NO_ROUTE, CompiledLpm
from repro.routing.rib import RoutingTable


class PrefixResolver(Protocol):
    """Batch address → prefix-row resolution (the aggregation key)."""

    prefixes: Sequence[Prefix]

    def lookup(self, addresses: np.ndarray) -> np.ndarray:
        """Rows into :attr:`prefixes` (:data:`NO_ROUTE` for no match)."""
        ...


class StreamingAggregator:
    """Bin packet batches into slots over a dynamic flow population.

    ``resolver`` maps destination addresses to prefixes — a
    :class:`~repro.routing.lpm.CompiledLpm`, a
    :class:`~repro.routing.lpm.FixedLengthResolver`, or a
    :class:`~repro.routing.rib.RoutingTable` (compiled on entry).
    ``start`` pins slot 0's timestamp; by default it is the first
    packet's timestamp floored to the ``slot_seconds`` grid.
    ``backend`` selects the flow-table strategy: an
    :class:`~repro.pipeline.backends.AggregationBackend` instance, a
    backend name (with ``capacity`` for the sketch backends), or
    ``None`` for the exact table. ``shards`` partitions a named backend
    across that many inner tables
    (:class:`~repro.pipeline.sharded.ShardedAggregation`), with
    ``capacity`` as the total bound.

    ``sample_rate`` stamps every emitted frame: set it to the sampling
    front-end's applied inversion factor
    (:attr:`~repro.pipeline.sampling.SamplingSpec.applied_rate`) when
    the packet stream feeding this aggregator is sampled, so the
    classifier and the summary wire format know the rates are
    inverted estimates.
    """

    def __init__(
        self,
        resolver: PrefixResolver | RoutingTable,
        slot_seconds: float = DEFAULT_SLOT_SECONDS,
        start: float | None = None,
        backend: AggregationBackend | str | None = None,
        capacity: int | None = None,
        shards: int = 1,
        sample_rate: float = 1.0,
    ) -> None:
        if slot_seconds <= 0:
            raise ClassificationError("slot_seconds must be positive")
        if sample_rate < 1.0:
            raise ClassificationError("sample_rate must be >= 1")
        if isinstance(resolver, RoutingTable):
            resolver = CompiledLpm.from_table(resolver)
        self.resolver = resolver
        if backend is None and shards > 1:
            backend = "exact"
        if backend is None:
            backend = ExactAggregation()
        elif isinstance(backend, str):
            backend = make_backend(
                backend, capacity=capacity, shards=shards
            )
        elif shards > 1:
            # an instance backend cannot be re-partitioned here; going
            # on with one table would silently drop the caller's
            # sharding request
            raise ClassificationError(
                "shards only applies to backends built by name; pass "
                "make_backend(name, capacity=..., shards=...) instead"
            )
        self.backend = backend
        self.sample_rate = float(sample_rate)
        self.slot_seconds = float(slot_seconds)
        self.start = start
        self.stats = AggregationStats()
        self._open_slot: int | None = None
        self._first_slot: int | None = None  # slot of the first frame
        self._frames_emitted = 0
        self._finished = False

    @property
    def prefixes(self) -> list[Prefix]:
        """Emitted population, in row order (the backend's live list)."""
        return self.backend.prefixes

    @property
    def num_flows(self) -> int:
        """Rows in the emitted population so far."""
        return len(self.backend.prefixes)

    @property
    def slots_emitted(self) -> int:
        """Frames emitted so far."""
        return self._frames_emitted

    def axis(self) -> TimeAxis:
        """The time axis covered by the frames emitted so far.

        Starts at the *first emitted frame's* slot (with an explicit
        ``start``, traffic may begin several slots in; no frames are
        emitted for the silent lead-in).
        """
        if (
            self.start is None
            or self._first_slot is None
            or self._frames_emitted == 0
        ):
            raise ClassificationError("no slots emitted yet")
        return TimeAxis(
            self.start + self._first_slot * self.slot_seconds,
            self.slot_seconds,
            self._frames_emitted,
        )

    def flow_records(self) -> list[FlowRecord]:
        """Per-flow accounting records, in row order."""
        return self.backend.flow_records()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def ingest(self, batch: PacketBatch) -> list[SlotFrame]:
        """Account one batch; returns the slots it completed."""
        if self._finished:
            raise ClassificationError("aggregator already finished")
        self.stats.packets_seen += batch.packets_seen
        self.stats.packets_skipped += batch.packets_skipped
        if batch.num_packets == 0:
            return []

        timestamps = batch.timestamps
        if self.start is None:
            first = float(timestamps[0])
            self.start = (
                math.floor(first / self.slot_seconds) * self.slot_seconds
            )

        rows = self.resolver.lookup(batch.destinations)
        routed = rows != NO_ROUTE
        slots = np.floor(
            (timestamps - self.start) / self.slot_seconds
        ).astype(np.int64)
        floor_slot = self._open_slot if self._open_slot is not None else 0
        timely = slots >= floor_slot
        self.stats.packets_outside_axis += int((~timely).sum())
        self.stats.packets_unrouted += int((timely & ~routed).sum())
        keep = timely & routed
        if not keep.any():
            return []

        if keep.all():
            # all-routed in-order batches — the worker hot path, where
            # the columns are views into a shared-memory ring slot —
            # skip four full-batch fancy-index copies
            sizes = batch.wire_bytes
            self.stats.packets_matched += int(keep.size)
        else:
            slots = slots[keep]
            sizes = batch.wire_bytes[keep]
            rows = rows[keep]
            timestamps = timestamps[keep]
            self.stats.packets_matched += int(keep.sum())
        self.stats.bytes_matched += int(sizes.sum())

        # Group by slot (stable: preserves time order within a slot) and
        # hand each group to the backend, so the population a frame
        # carries is exactly the set of flows tracked up to that slot —
        # independent of how the capture was chunked into batches.
        # Chronological captures arrive already slot-sorted, so the
        # stable sort only runs for genuinely out-of-order batches.
        frames: list[SlotFrame] = []
        if slots.size > 1 and (np.diff(slots) < 0).any():
            order = np.argsort(slots, kind="stable")
            slots, sizes, rows, timestamps = (
                slots[order],
                sizes[order],
                rows[order],
                timestamps[order],
            )
        boundaries = np.flatnonzero(np.diff(slots)) + 1
        prefix_of = self._prefix_of
        for group_slots, group_rows, group_sizes, group_times in zip(
            np.split(slots, boundaries),
            np.split(rows, boundaries),
            np.split(sizes, boundaries),
            np.split(timestamps, boundaries),
        ):
            slot = int(group_slots[0])
            if self._open_slot is None:
                self._open_slot = slot
            while self._open_slot < slot:
                frames.append(self._emit_open())
            self.backend.accumulate(
                group_rows, group_sizes, group_times, prefix_of
            )
        return frames

    def finish(self) -> list[SlotFrame]:
        """Flush the final open slot; the aggregator is then closed."""
        if self._finished:
            return []
        self._finished = True
        if self._open_slot is None:
            return []
        return [self._emit_open()]

    def frames(self, source: PacketSource) -> Iterator[SlotFrame]:
        """Drive a packet source to exhaustion, yielding slot frames."""
        for batch in source.batches():
            yield from self.ingest(batch)
        yield from self.finish()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _prefix_of(self, row: int) -> Prefix:
        return self.resolver.prefixes[row]

    def _emit_open(self) -> SlotFrame:
        assert self._open_slot is not None and self.start is not None
        rates = self.backend.close_slot() * 8.0 / self.slot_seconds
        frame = SlotFrame(
            slot=self._open_slot,
            start=self.start + self._open_slot * self.slot_seconds,
            rates=rates,
            population=self.backend.prefixes,
            residual_row=self.backend.residual_row,
            sample_rate=self.sample_rate,
        )
        if self._first_slot is None:
            self._first_slot = self._open_slot
        self._open_slot += 1
        self._frames_emitted += 1
        return frame


class AggregatingSlotSource:
    """Adapt ``packet source + streaming aggregator`` to a slot source.

    This is the composition the ``repro stream`` command runs: packets
    in, classified slots out, one pass, bounded memory.
    """

    def __init__(
        self, packets: PacketSource, aggregator: StreamingAggregator
    ) -> None:
        self.packets = packets
        self.aggregator = aggregator
        self.slot_seconds = aggregator.slot_seconds

    def slots(self) -> Iterator[SlotFrame]:
        return self.aggregator.frames(self.packets)
