"""Pipeline inputs: packet sources and slot sources.

The streaming pipeline consumes measurements at one of two altitudes:

- a :class:`PacketSource` yields :class:`PacketBatch` chunks — columnar
  numpy arrays of per-packet facts — which the aggregation stage bins
  into slots. Memory is bounded by the chunk size, never the capture
  length.
- a :class:`SlotSource` yields :class:`SlotFrame` objects — one slot's
  flow bandwidths at a time — which feed the classifier directly.

Adapters cover the workloads the repo already speaks: pcap capture
files (with a vectorized scan that never builds per-packet Python
objects), flow-record CSV exports, in-memory rate matrices, and the
synthetic link scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence

import numpy as np

from repro.errors import ClassificationError, PcapFormatError
from repro.flows.matrix import RateMatrix
from repro.net import ipv4
from repro.net.prefix import Prefix
from repro.pcap.packet import PacketSummary
from repro.pcap.pcapfile import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    PcapHeader,
    read_header,
)

#: Default packets per batch — the ingestion memory granule.
DEFAULT_CHUNK_PACKETS = 65536
#: Bytes read from disk per syscall while scanning captures.
READ_BLOCK_BYTES = 1 << 22

#: Byte offsets into the IPv4 fixed header.
_IP_TOTAL_LENGTH = 2
_IP_PROTOCOL = 9
_IP_SOURCE = 12
_IP_DESTINATION = 16
_IP_MIN_HEADER = 20
_ETHERTYPE_OFFSET = 12
_ETHERNET_HEADER = 14
_ETHERTYPE_IPV4 = 0x0800
#: Size of a pcap per-record header (ts_sec, ts_frac, incl_len, orig_len).
_RECORD_HEADER_BYTES = 16


def _uint32_at(raw: np.ndarray, offsets: np.ndarray, little: bool) -> np.ndarray:
    """Gather 32-bit unsigned fields at ``offsets`` from a byte array."""
    shifts = (0, 8, 16, 24) if little else (24, 16, 8, 0)
    value = raw[offsets].astype(np.int64) << shifts[0]
    for byte, shift in enumerate(shifts[1:], start=1):
        value |= raw[offsets + byte].astype(np.int64) << shift
    return value


@dataclass(frozen=True)
class PacketBatch:
    """A columnar chunk of packets: parallel per-packet fact arrays.

    ``packets_seen`` counts every capture record scanned for this batch,
    including non-IPv4 or too-truncated records that produced no row;
    the difference is :attr:`packets_skipped`.
    """

    timestamps: np.ndarray
    sources: np.ndarray
    destinations: np.ndarray
    protocols: np.ndarray
    wire_bytes: np.ndarray
    packets_seen: int

    @classmethod
    def of_flows(
        cls, timestamps: np.ndarray, keys: np.ndarray, wire_bytes: np.ndarray
    ) -> "PacketBatch":
        """A batch over pre-resolved flow keys, without padding copies.

        The shared-memory ring ships only the three columns the
        aggregation path reads; the unused source/protocol columns are
        zero-stride broadcast views, so building the batch allocates
        nothing — the columns can be ingested in place, straight out of
        a ring slot.
        """
        zeros = np.broadcast_to(np.int64(0), (timestamps.size,))
        return cls(
            timestamps=timestamps,
            sources=zeros,
            destinations=keys,
            protocols=zeros,
            wire_bytes=wire_bytes,
            packets_seen=timestamps.size,
        )

    @property
    def num_packets(self) -> int:
        """Rows in this batch."""
        return self.timestamps.size

    @property
    def packets_skipped(self) -> int:
        """Records scanned but not representable as IPv4 packet rows."""
        return self.packets_seen - self.num_packets

    def summaries(self) -> Iterator[PacketSummary]:
        """Per-packet view, for callers still thinking in objects."""
        for i in range(self.num_packets):
            yield PacketSummary(
                timestamp=float(self.timestamps[i]),
                source=int(self.sources[i]),
                destination=int(self.destinations[i]),
                protocol=int(self.protocols[i]),
                wire_bytes=int(self.wire_bytes[i]),
            )


class PacketSource(Protocol):
    """Anything that can stream packets as columnar batches."""

    def batches(self) -> Iterator[PacketBatch]:
        """Yield packet batches in capture (time) order."""
        ...


@dataclass(frozen=True)
class SlotFrame:
    """One completed measurement slot from a slot source.

    ``rates`` holds bits/second per flow; row ``i`` is flow
    ``population[i]``. ``population`` may be a *live* sequence that
    grows as later slots discover new flows — ``rates.size`` is the
    authoritative population size when this frame was emitted, and rows
    keep their position forever (flows are only appended).

    ``residual_row`` marks the row carrying *untracked* traffic when a
    bounded aggregation backend produced this frame: that row conserves
    the bytes of flows outside the sketch's candidate table and must
    never itself be classified as an elephant. ``None`` (the default)
    means every row is a real flow.

    ``sample_rate`` records the inversion factor already applied to
    this frame's byte counts by a sampling front-end (see
    :mod:`repro.pipeline.sampling`): rates are unbiased estimates of
    N x the observed traffic when it is N > 1. The classifier uses it
    to size its variance guard; 1.0 means a full packet stream.
    """

    slot: int
    start: float
    rates: np.ndarray
    population: Sequence[Prefix]
    residual_row: int | None = None
    sample_rate: float = 1.0

    @property
    def num_flows(self) -> int:
        """Population size at emission time."""
        return self.rates.size


class SlotSource(Protocol):
    """Anything that can stream completed slots in time order."""

    slot_seconds: float

    def slots(self) -> Iterator[SlotFrame]:
        """Yield slot frames with strictly increasing slot numbers."""
        ...


class PcapPacketSource:
    """Chunked, vectorized scan of a classic pcap capture file.

    The per-record Python work is one header unpack and four list
    appends; every per-packet field (ethertype check, IPv4 version,
    destination, wire size) is extracted with numpy over the whole
    chunk. Non-IPv4 frames and records too truncated to carry an IPv4
    fixed header are counted and skipped rather than raised — a
    monitor keeps running when an LLDP frame goes by.
    """

    def __init__(self, path: str, chunk_packets: int = DEFAULT_CHUNK_PACKETS) -> None:
        if chunk_packets < 1:
            raise ClassificationError("chunk_packets must be >= 1")
        self.path = path
        self.chunk_packets = chunk_packets

    def batches(self) -> Iterator[PacketBatch]:
        with open(self.path, "rb") as stream:
            header = read_header(stream)
            if header.linktype not in (LINKTYPE_ETHERNET, LINKTYPE_RAW_IP):
                raise PcapFormatError(f"unsupported linktype {header.linktype}")
            byte_order = "little" if header.byte_order == "<" else "big"
            divisor = 1e9 if header.nanosecond else 1e6
            # Reject over-snaplen lengths inside the chase loop: a
            # corrupt length field must fail at that record, not after
            # buffering the rest of the file hunting for its "end".
            max_captured = header.snaplen if header.snaplen > 0 else 0x7FFFFFFF
            buffer = bytearray()  # += extends in place, no quadratic copy
            position = 0
            pending: list[int] = []  # record-header offsets into buffer
            eof = False
            from_bytes = int.from_bytes  # the one call per record
            while True:
                # Chase the record chain as far as the buffer allows.
                # This loop is the only per-record Python work in the
                # whole ingestion path — keep its body minimal.
                limit = len(buffer) - _RECORD_HEADER_BYTES
                want = self.chunk_packets
                while len(pending) < want and position <= limit:
                    incl = from_bytes(buffer[position + 8 : position + 12], byte_order)
                    if incl > max_captured:
                        raise PcapFormatError(
                            f"record claims {incl} bytes, above snaplen "
                            f"{header.snaplen}"
                        )
                    jump = position + _RECORD_HEADER_BYTES + incl
                    if jump > len(buffer):
                        break
                    pending.append(position)
                    position = jump
                if len(pending) >= self.chunk_packets:
                    yield self._emit(buffer, position, pending, header, divisor)
                    del buffer[:position]
                    position = 0
                    pending = []
                    continue
                if eof:
                    if position + _RECORD_HEADER_BYTES <= len(buffer):
                        raise PcapFormatError("truncated pcap record body")
                    if position < len(buffer):
                        raise PcapFormatError("truncated pcap record header")
                    if pending:
                        yield self._emit(buffer, position, pending, header, divisor)
                    return
                block = stream.read(READ_BLOCK_BYTES)
                if block:
                    buffer += block
                else:
                    eof = True

    def _emit(
        self,
        buffer: bytearray,
        position: int,
        pending: list[int],
        header: PcapHeader,
        divisor: float,
    ) -> PacketBatch:
        # Copy out of the mutable bytearray: holding a view would make
        # the `del buffer[:position]` reclaim a BufferError.
        raw = np.frombuffer(bytes(memoryview(buffer)[:position]), dtype=np.uint8)
        starts = np.array(pending, dtype=np.int64)
        little = header.byte_order == "<"
        seconds = _uint32_at(raw, starts, little)
        fractions = _uint32_at(raw, starts + 4, little)
        capture_len = _uint32_at(raw, starts + 8, little)
        original_len = _uint32_at(raw, starts + 12, little)
        return self._build_batch(
            raw,
            header.linktype,
            divisor,
            seconds,
            fractions,
            capture_len,
            original_len,
            starts + _RECORD_HEADER_BYTES,
        )

    @staticmethod
    def _build_batch(
        raw: np.ndarray,
        linktype: int,
        divisor: float,
        seconds: np.ndarray,
        fractions: np.ndarray,
        capture_len: np.ndarray,
        original_len: np.ndarray,
        offset: np.ndarray,
    ) -> PacketBatch:
        scanned = offset.size
        overhead = _ETHERNET_HEADER if linktype == LINKTYPE_ETHERNET else 0

        valid = capture_len >= overhead + _IP_MIN_HEADER
        if linktype == LINKTYPE_ETHERNET:
            eth = offset[valid] + _ETHERTYPE_OFFSET
            ethertype = (raw[eth].astype(np.int64) << 8) | raw[eth + 1]
            keep = np.flatnonzero(valid)[ethertype == _ETHERTYPE_IPV4]
            valid = np.zeros_like(valid)
            valid[keep] = True
        ip = offset[valid] + overhead
        version = raw[ip] >> 4
        keep = np.flatnonzero(valid)[version == 4]

        ip = offset[keep] + overhead
        high = raw[ip + _IP_TOTAL_LENGTH].astype(np.int64)
        total_length = (high << 8) | raw[ip + _IP_TOTAL_LENGTH + 1]
        truncated = original_len[keep] > capture_len[keep]
        wire = np.where(truncated, original_len[keep], overhead + total_length)

        def dword(base: np.ndarray) -> np.ndarray:
            value = raw[base].astype(np.int64)
            for byte in range(1, 4):
                value = (value << 8) | raw[base + byte]
            return value

        timestamps = (
            seconds.astype(np.float64)[keep]
            + fractions.astype(np.float64)[keep] / divisor
        )
        return PacketBatch(
            timestamps=timestamps,
            sources=dword(ip + _IP_SOURCE),
            destinations=dword(ip + _IP_DESTINATION),
            protocols=raw[ip + _IP_PROTOCOL].astype(np.int64),
            wire_bytes=wire,
            packets_seen=scanned,
        )


class CsvPacketSource:
    """Flow-record CSV: one ``timestamp,destination,wire_bytes`` row per
    packet (or pre-aggregated record), destination as dotted quad or
    integer. A header row starting with ``timestamp`` is skipped. This
    is the interchange format exported by flow collectors that have
    already shed payloads.
    """

    def __init__(self, path: str, chunk_packets: int = DEFAULT_CHUNK_PACKETS) -> None:
        if chunk_packets < 1:
            raise ClassificationError("chunk_packets must be >= 1")
        self.path = path
        self.chunk_packets = chunk_packets

    def batches(self) -> Iterator[PacketBatch]:
        with open(self.path) as stream:
            timestamps: list[float] = []
            destinations: list[int] = []
            sizes: list[int] = []
            for line in stream:
                line = line.strip()
                if not line or line.startswith("timestamp"):
                    continue
                cells = line.split(",")
                if len(cells) < 3:
                    raise ClassificationError(
                        f"flow-record row needs 3 columns: {line!r}"
                    )
                timestamps.append(float(cells[0]))
                destination = cells[1].strip()
                destinations.append(
                    ipv4.parse_ipv4(destination)
                    if "." in destination
                    else int(destination)
                )
                sizes.append(int(cells[2]))
                if len(timestamps) >= self.chunk_packets:
                    yield self._build(timestamps, destinations, sizes)
                    timestamps, destinations, sizes = [], [], []
            if timestamps:
                yield self._build(timestamps, destinations, sizes)

    @staticmethod
    def _build(
        timestamps: list[float], destinations: list[int], sizes: list[int]
    ) -> PacketBatch:
        count = len(timestamps)
        return PacketBatch(
            timestamps=np.array(timestamps, dtype=np.float64),
            sources=np.zeros(count, dtype=np.int64),
            destinations=np.array(destinations, dtype=np.int64),
            protocols=np.zeros(count, dtype=np.int64),
            wire_bytes=np.array(sizes, dtype=np.int64),
            packets_seen=count,
        )


class ArrayPacketSource:
    """An in-memory packet source over parallel per-packet arrays.

    The columnar twin of a recorded capture: callers supply
    timestamps, destinations and wire sizes (sources/protocols default
    to zero) and get standard chunked batches back. Being a plain
    bundle of arrays it pickles cheaply, which makes it the packet
    source of choice for feeding synthetic traffic to worker processes
    in tests and benchmarks.
    """

    def __init__(
        self,
        timestamps: np.ndarray,
        destinations: np.ndarray,
        wire_bytes: np.ndarray,
        chunk_packets: int = DEFAULT_CHUNK_PACKETS,
    ) -> None:
        if chunk_packets < 1:
            raise ClassificationError("chunk_packets must be >= 1")
        timestamps = np.asarray(timestamps, dtype=np.float64)
        destinations = np.asarray(destinations, dtype=np.int64)
        wire_bytes = np.asarray(wire_bytes)
        if not (timestamps.size == destinations.size == wire_bytes.size):
            raise ClassificationError("packet arrays must be parallel (equal length)")
        self.timestamps = timestamps
        self.destinations = destinations
        self.wire_bytes = wire_bytes
        self.chunk_packets = chunk_packets

    @property
    def num_packets(self) -> int:
        """Packets this source will emit."""
        return self.timestamps.size

    def batches(self) -> Iterator[PacketBatch]:
        for lo in range(0, self.num_packets, self.chunk_packets):
            hi = min(lo + self.chunk_packets, self.num_packets)
            yield PacketBatch(
                timestamps=self.timestamps[lo:hi],
                sources=np.zeros(hi - lo, dtype=np.int64),
                destinations=self.destinations[lo:hi],
                protocols=np.zeros(hi - lo, dtype=np.int64),
                wire_bytes=self.wire_bytes[lo:hi],
                packets_seen=hi - lo,
            )


class MatrixSlotSource:
    """Stream the columns of an in-memory rate matrix.

    The population is static, so every frame shares the matrix's prefix
    list and full flow count — this is the adapter that lets any batch
    artefact replay through the streaming path.
    """

    def __init__(self, matrix: RateMatrix) -> None:
        self.matrix = matrix
        self.slot_seconds = matrix.axis.slot_seconds

    def slots(self) -> Iterator[SlotFrame]:
        axis = self.matrix.axis
        for slot in range(axis.num_slots):
            yield SlotFrame(
                slot=slot,
                start=axis.slot_start(slot),
                rates=self.matrix.rates[:, slot],
                population=self.matrix.prefixes,
            )


class ScenarioSlotSource(MatrixSlotSource):
    """Stream a synthetic paper-link scenario slot by slot.

    ``link`` is ``"west"`` or ``"east"``; the fluid simulation runs once
    at construction (it is inherently whole-horizon) and the resulting
    matrix replays through the slot interface.
    """

    def __init__(
        self, link: str = "west", scale: float = 0.25, seed: int | None = None
    ) -> None:
        from repro.traffic.scenarios import east_coast_link, west_coast_link

        if link == "west":
            factory = west_coast_link
        elif link == "east":
            factory = east_coast_link
        else:
            raise ClassificationError(f"unknown link {link!r}")
        kwargs = {} if seed is None else {"seed": seed}
        self.workload = factory(scale=scale, **kwargs)
        super().__init__(self.workload.matrix)
