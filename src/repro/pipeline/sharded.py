"""Sharded aggregation: one link, N flow tables, merged at slot close.

The backends in :mod:`repro.pipeline.backends` assume one monitor sees
all of a link's traffic. :class:`ShardedAggregation` drops that
assumption: flow keys are hash-partitioned across ``N`` inner backends
(exact or sketch — the structures are mergeable, per Misra–Gries 1982
and the Space-Saving merge literature), each shard accounts its share
independently, and the per-shard candidate tables are merged into one
population when the slot closes. This is the in-process rehearsal for
multi-process ingestion: each shard touches a disjoint key set, so the
inner backends could live in separate processes (or separate monitors)
and only their slot-close summaries need to meet.

Semantics by inner-backend family:

- **exact shards** reproduce single-backend exact aggregation *exactly*
  — per slot, per row, byte for byte, including row numbering (global
  first-traffic order) — because every key's bytes land in exactly one
  shard and the merge adds each shard-local sum to a fresh zero. The
  property suite asserts this.
- **sketch shards** bound tracked state at the *sum* of the shard
  capacities. Untracked bytes fall into each shard's residual and the
  merge conserves them in the shared residual row 0, so merged slots
  still sum to the traffic that arrived.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ClassificationError
from repro.flows.records import FlowRecord
from repro.pipeline.backends import (
    RESIDUAL_PREFIX,
    AggregationBackend,
    PrefixOf,
)

#: Fibonacci-hash multiplier (2**64 / golden ratio), the classic
#: avalanche step for sequential integer keys — resolver rows are
#: sequential, so a plain modulo would stripe, not shard.
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)
_HASH_SHIFT = np.uint64(33)


def shard_of(keys: np.ndarray, num_shards: int) -> np.ndarray:
    """Deterministic shard index per flow key (Fibonacci hashing)."""
    if num_shards < 1:
        raise ClassificationError("num_shards must be >= 1")
    hashed = keys.astype(np.uint64) * _HASH_MULTIPLIER
    return ((hashed >> _HASH_SHIFT) % np.uint64(num_shards)).astype(np.int64)


class ShardedAggregation(AggregationBackend):
    """Hash-partition one link's flows across N inner backends.

    The outer object satisfies the full
    :class:`~repro.pipeline.backends.AggregationBackend` contract — a
    live append-only population, permanent rows, a residual row when
    the inners are sketches — while delegating all per-flow counting to
    the shards. ``accumulate`` routes each key to its home shard (same
    key, same shard, always); ``close_slot`` closes every shard and
    folds the shard-local vectors into the merged population.

    Inner backends must be homogeneous (all exact or all sketch) and
    fresh; build them through
    :func:`~repro.pipeline.backends.make_backend` with ``shards=N``.
    """

    name = "sharded"

    def __init__(self, backends: Sequence[AggregationBackend]) -> None:
        shards = list(backends)
        if not shards:
            raise ClassificationError(
                "sharded aggregation needs at least one inner backend"
            )
        kinds = {shard.residual_row is not None for shard in shards}
        if len(kinds) > 1:
            raise ClassificationError(
                "shard backends must be homogeneous: all exact or all sketch"
            )
        for shard in shards:
            if shard.slots_closed or shard.peak_tracked:
                raise ClassificationError(
                    "shard backends must be fresh; aggregation "
                    "backends are single-use"
                )
            if isinstance(shard, ShardedAggregation):
                raise ClassificationError(
                    "sharded backends do not nest; pass the flat list "
                    "of inner backends instead"
                )
        super().__init__()
        self.shards = shards
        self.num_shards = len(shards)
        self._sketched = shards[0].residual_row is not None
        #: Per shard: outer row of inner row ``offset + i`` (the
        #: residual row, when present, is handled separately).
        self._shard_rows: list[list[int]] = [[] for _ in shards]
        #: Dense key → outer row map mirroring ``_row_of`` (flow keys
        #: are resolver rows, so a flat vector beats the dict walk on
        #: the exact-shard hot path).
        self._key_row = np.full(0, -1, dtype=np.int64)
        if self._sketched:
            self.residual_row = 0
            self.prefixes = [RESIDUAL_PREFIX]
            self.capacity = sum(
                shard.capacity for shard in shards if shard.capacity is not None
            )
        else:
            self.residual_row = None
            self.capacity = None
        self.name = f"sharded-{shards[0].name}"

    # ------------------------------------------------------------------
    # AggregationBackend interface
    # ------------------------------------------------------------------

    @property
    def tracked_flows(self) -> int:
        return sum(shard.tracked_flows for shard in self.shards)

    def accumulate(
        self,
        keys: np.ndarray,
        sizes: np.ndarray,
        timestamps: np.ndarray,
        prefix_of: PrefixOf,
    ) -> None:
        if keys.size == 0:
            return
        if not self._sketched:
            # Exact shards: the outer population must number rows in
            # global first-traffic order (interleaved across shards) to
            # stay byte-identical with a single exact backend.
            self._assign_rows(keys, prefix_of)
        homes = shard_of(keys, self.num_shards)
        # one stable sort splits the batch into per-shard segments
        # (time order preserved within each), instead of N full-array
        # mask scans per batch
        order = np.argsort(homes, kind="stable")
        sorted_homes = homes[order]
        keys, sizes, timestamps = (
            keys[order],
            sizes[order],
            timestamps[order],
        )
        boundaries = np.flatnonzero(np.diff(sorted_homes)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [sorted_homes.size]))
        for start, end in zip(starts.tolist(), ends.tolist()):
            shard = self.shards[int(sorted_homes[start])]
            shard.accumulate(
                keys[start:end],
                sizes[start:end],
                timestamps[start:end],
                prefix_of,
            )
        self.peak_tracked = max(self.peak_tracked, self.tracked_flows)

    def close_slot(self) -> np.ndarray:
        vectors = [shard.close_slot() for shard in self.shards]
        for index in range(self.num_shards):
            self._extend_map(index)
        merged = np.zeros(len(self.prefixes))
        for index, vector in enumerate(vectors):
            if vector.size == 0:
                continue
            if self._sketched:
                merged[0] += vector[0]
                vector = vector[1:]
            rows = np.asarray(
                self._shard_rows[index][: vector.size], dtype=np.int64
            )
            if rows.size:
                # keys are disjoint across shards, but the residual fold
                # above already shows why add-at is the safe idiom here
                np.add.at(merged, rows, vector)
        self.slots_closed += 1
        return merged

    def flow_records(self) -> list[FlowRecord]:
        """Merged per-row records, re-fetched from the shards per call.

        Exact shards materialise their records lazily at call time, so
        the merged view rebuilds from every shard's current snapshot
        instead of adopting live record objects; sketch residuals fold
        into row 0 as before.
        """
        for index in range(self.num_shards):
            self._extend_map(index)
        records = [FlowRecord(prefix) for prefix in self.prefixes]
        offset = 1 if self._sketched else 0
        if self._sketched:
            merged = records[0]
            for shard in self.shards:
                inner = shard.flow_records()[0]
                if inner.packets or inner.bytes_total:
                    merged.add_group(
                        inner.packets,
                        inner.bytes_total,
                        inner.first_seen,
                        inner.last_seen,
                    )
        for index, shard in enumerate(self.shards):
            shard_records = shard.flow_records()
            for inner_index, row in enumerate(self._shard_rows[index]):
                records[row] = shard_records[offset + inner_index]
        return records

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _assign_rows(self, keys: np.ndarray, prefix_of: PrefixOf) -> None:
        """Mirror ExactAggregation's first-traffic row numbering."""
        unique, first_index = np.unique(keys, return_index=True)
        top = int(unique[-1]) + 1
        size = self._key_row.size
        if top > size:
            grown = np.full(max(top, 2 * size), -1, dtype=np.int64)
            grown[:size] = self._key_row
            self._key_row = grown
        known = self._key_row[unique]
        new = known < 0
        if not new.any():
            return
        # only genuinely-new keys reach Python; repeat traffic stays in
        # the vector compare above
        fresh = unique[new]
        arrival = np.argsort(first_index[new])
        for key in fresh[arrival].tolist():
            row = len(self.prefixes)
            self._row_of[key] = row
            self._key_row[key] = row
            self.prefixes.append(prefix_of(key))

    def _extend_map(self, index: int) -> None:
        """Map any new rows of shard ``index`` onto the population."""
        shard = self.shards[index]
        row_map = self._shard_rows[index]
        keys = shard.row_keys()
        if len(keys) == len(row_map):
            return
        offset = 1 if self._sketched else 0
        for inner_index in range(len(row_map), len(keys)):
            key = keys[inner_index]
            row = self._row_of.get(key)
            if row is None:
                # sketch shards surface a key only at slot close; give
                # it its outer row now, in (shard, inner-row) order
                row = len(self.prefixes)
                self._row_of[key] = row
                self.prefixes.append(shard.prefixes[offset + inner_index])
            row_map.append(row)
