"""Experiment harness: canonical runs, figure builders, text statistics."""

from repro.experiments.ascii_plot import histogram_chart, line_chart
from repro.experiments.config import (
    DEFAULT_BENCH_SCALE,
    SCALE_ENV_VAR,
    ExperimentConfig,
    bench_config,
    bench_scale,
)
from repro.experiments.figures import Figure1a, Figure1b, Figure1c
from repro.experiments.runner import (
    LINK_NAMES,
    PaperRun,
    cached_paper_run,
    run_paper_experiment,
)
from repro.experiments.textstats import (
    SingleVsTwoFeature,
    VolatilityStats,
    prefix_reports,
    volatility_grid,
)

__all__ = [
    "DEFAULT_BENCH_SCALE",
    "ExperimentConfig",
    "Figure1a",
    "Figure1b",
    "Figure1c",
    "LINK_NAMES",
    "PaperRun",
    "SCALE_ENV_VAR",
    "SingleVsTwoFeature",
    "VolatilityStats",
    "bench_config",
    "bench_scale",
    "cached_paper_run",
    "histogram_chart",
    "line_chart",
    "prefix_reports",
    "run_paper_experiment",
    "volatility_grid",
]
