"""Figure builders: the exact series/histograms of Fig. 1(a)–(c)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.elephants import ElephantSeries
from repro.analysis.holding import HoldingTimeAnalysis
from repro.core.engine import Scheme
from repro.experiments.ascii_plot import histogram_chart, line_chart
from repro.experiments.runner import PaperRun
from repro.stats.histogram import Histogram


def _curve_label(link: str, scheme: Scheme) -> str:
    scheme_name = ("constant load" if scheme is Scheme.CONSTANT_LOAD
                   else "aest")
    return f"{scheme_name} ({link})"


@dataclass(frozen=True)
class Figure1a:
    """Number of elephants per slot, per link and scheme."""

    series: dict[str, ElephantSeries]

    @classmethod
    def from_run(cls, run: PaperRun) -> "Figure1a":
        series = {
            _curve_label(link, scheme): ElephantSeries.from_result(result)
            for (link, scheme), result in run.latent_heat_results().items()
        }
        return cls(series)

    def render(self) -> str:
        """ASCII rendering in the figure's layout."""
        chart_input = {
            label: (entry.hours, entry.counts)
            for label, entry in self.series.items()
        }
        return line_chart(
            chart_input,
            title="Fig 1(a): number of elephants (latent-heat schemes)",
            y_label="elephants per slot",
            x_label="hours since 09:00 Jul 24",
        )

    def mean_counts(self) -> dict[str, float]:
        """Average elephant count per curve (paper: ~600 west, ~500 east)."""
        return {label: entry.mean_count
                for label, entry in self.series.items()}


@dataclass(frozen=True)
class Figure1b:
    """Fraction of traffic apportioned to elephants, per link and scheme."""

    series: dict[str, ElephantSeries]

    @classmethod
    def from_run(cls, run: PaperRun) -> "Figure1b":
        series = {
            _curve_label(link, scheme): ElephantSeries.from_result(result)
            for (link, scheme), result in run.latent_heat_results().items()
        }
        return cls(series)

    def render(self) -> str:
        chart_input = {
            label: (entry.hours, entry.traffic_fraction)
            for label, entry in self.series.items()
        }
        return line_chart(
            chart_input,
            title="Fig 1(b): fraction of total traffic apportioned to elephants",
            y_label="traffic fraction",
            x_label="hours since 09:00 Jul 24",
        )

    def mean_fractions(self) -> dict[str, float]:
        """Average fraction per curve (paper: ~0.6)."""
        return {label: entry.mean_fraction
                for label, entry in self.series.items()}


@dataclass(frozen=True)
class Figure1c:
    """Histogram of average holding times in the elephant state."""

    analyses: dict[str, HoldingTimeAnalysis]

    @classmethod
    def from_run(cls, run: PaperRun) -> "Figure1c":
        analyses = {
            _curve_label(link, scheme): HoldingTimeAnalysis.from_result(
                result, busy_hours=run.config.busy_hours
            )
            for (link, scheme), result in run.latent_heat_results().items()
        }
        return cls(analyses)

    def histograms(self) -> dict[str, Histogram]:
        """One Fig. 1(c) histogram per curve."""
        return {
            label: analysis.histogram()
            for label, analysis in self.analyses.items()
        }

    def render(self) -> str:
        parts = []
        for label, histogram in self.histograms().items():
            parts.append(histogram_chart(
                histogram.centers, histogram.counts,
                title=(f"Fig 1(c): average holding time in elephant state "
                       f"[{label}] (5-min slots, busy period)"),
            ))
        return "\n\n".join(parts)

    def mean_holding_slots(self) -> dict[str, float]:
        """Population mean holding time per curve (paper: ~24 slots)."""
        return {
            label: float(analysis.per_flow_mean_slots.mean())
            if analysis.per_flow_mean_slots.size else float("nan")
            for label, analysis in self.analyses.items()
        }
