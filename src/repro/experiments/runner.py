"""End-to-end experiment runner with in-process caching.

One "paper run" = simulate both links, classify with both schemes and
both decision rules. Figures 1(a)–(c) and all in-text statistics are
different views of the same grid, so the runner caches completed runs
per configuration — benchmarks measure their own analysis stage without
re-simulating the world each time (the simulation cost itself is
measured by the substrate benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import ClassificationEngine, Feature, Scheme
from repro.core.result import ClassificationResult
from repro.experiments.config import ExperimentConfig
from repro.traffic.linksim import LinkWorkload
from repro.traffic.scenarios import east_coast_link, west_coast_link

#: The links of the paper, in presentation order.
LINK_NAMES = ("west-coast", "east-coast")


@dataclass
class PaperRun:
    """All artefacts of one full reproduction run."""

    config: ExperimentConfig
    workloads: dict[str, LinkWorkload]
    #: results[link][(scheme, feature)]
    results: dict[str, dict[tuple[Scheme, Feature], ClassificationResult]]

    def result(self, link: str, scheme: Scheme,
               feature: Feature) -> ClassificationResult:
        """Fetch one cell of the link × scheme × feature grid."""
        return self.results[link][(scheme, feature)]

    def latent_heat_results(self) -> dict[tuple[str, Scheme],
                                          ClassificationResult]:
        """The four runs Fig. 1 plots: both links × both schemes."""
        out = {}
        for link in LINK_NAMES:
            for scheme in Scheme:
                out[(link, scheme)] = self.result(link, scheme,
                                                  Feature.LATENT_HEAT)
        return out

    def single_feature_results(self) -> dict[tuple[str, Scheme],
                                             ClassificationResult]:
        """The single-feature grid behind the in-text volatility claims."""
        out = {}
        for link in LINK_NAMES:
            for scheme in Scheme:
                out[(link, scheme)] = self.result(link, scheme,
                                                  Feature.SINGLE)
        return out


def run_paper_experiment(config: ExperimentConfig) -> PaperRun:
    """Simulate both links and run the full 2×2 classification grid."""
    workloads = {
        "west-coast": west_coast_link(scale=config.scale),
        "east-coast": east_coast_link(scale=config.scale),
    }
    results: dict[str, dict[tuple[Scheme, Feature], ClassificationResult]] = {}
    for name, workload in workloads.items():
        engine = ClassificationEngine(workload.matrix, config.engine)
        grid: dict[tuple[Scheme, Feature], ClassificationResult] = {}
        for scheme in Scheme:
            for feature in Feature:
                grid[(scheme, feature)] = engine.run(scheme, feature)
        results[name] = grid
    return PaperRun(config=config, workloads=workloads, results=results)


_RUN_CACHE: dict[tuple[float, float, float, float, int], PaperRun] = {}


def cached_paper_run(config: ExperimentConfig) -> PaperRun:
    """Memoised :func:`run_paper_experiment` (keyed by config values)."""
    key = (config.scale, config.busy_hours, config.engine.alpha,
           config.engine.beta, config.engine.window)
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run_paper_experiment(config)
    return _RUN_CACHE[key]
