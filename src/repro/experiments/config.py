"""Experiment configuration shared by benches, tests and examples."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.engine import EngineConfig
from repro.errors import ExperimentError

#: Environment variable selecting the experiment scale (0 < scale <= 1).
SCALE_ENV_VAR = "REPRO_SCALE"

#: Default scale for benchmark runs. 0.5 keeps a single bench invocation
#: within seconds while preserving every qualitative shape; set
#: REPRO_SCALE=1.0 for the full paper-sized run.
DEFAULT_BENCH_SCALE = 0.5


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one reproduction run."""

    scale: float = DEFAULT_BENCH_SCALE
    busy_hours: float = 5.0
    engine: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ExperimentError(f"scale {self.scale} outside (0, 1]")
        if self.busy_hours <= 0:
            raise ExperimentError("busy_hours must be positive")
        self.engine.validate()


def bench_scale() -> float:
    """Scale for benchmark runs (REPRO_SCALE env override)."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return DEFAULT_BENCH_SCALE
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ExperimentError(f"bad {SCALE_ENV_VAR}={raw!r}") from exc
    if not 0.0 < scale <= 1.0:
        raise ExperimentError(f"{SCALE_ENV_VAR} must be in (0, 1]")
    return scale


def bench_config() -> ExperimentConfig:
    """The configuration benchmarks run with."""
    return ExperimentConfig(scale=bench_scale())
