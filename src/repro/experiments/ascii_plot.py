"""Terminal plotting: line charts and histograms in plain ASCII.

Benchmarks and examples render the paper's figures directly into the
terminal, so the reproduction can be eyeballed without matplotlib
(which is unavailable offline anyway).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

_MARKERS = "*o+x#@%&"


def line_chart(series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
               width: int = 78, height: int = 18,
               title: str = "", y_label: str = "",
               x_label: str = "") -> str:
    """Render named ``(x, y)`` series as an ASCII line chart.

    Each series gets its own marker; the legend maps markers to names.
    Points are nearest-neighbour binned onto the character grid.
    """
    if not series:
        return f"{title}\n(no data)"
    all_x = np.concatenate([np.asarray(x, float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, float) for _, y in series.values()])
    if all_x.size == 0:
        return f"{title}\n(no data)"
    x_low, x_high = float(all_x.min()), float(all_x.max())
    y_low, y_high = float(all_y.min()), float(all_y.max())
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        xs = np.asarray(xs, float)
        ys = np.asarray(ys, float)
        columns = ((xs - x_low) / (x_high - x_low) * (width - 1)).round()
        rows = ((ys - y_low) / (y_high - y_low) * (height - 1)).round()
        for column, row in zip(columns.astype(int), rows.astype(int)):
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[y: {y_label}]")
    top_label = _format_value(y_high)
    bottom_label = _format_value(y_low)
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * label_width} +{'-' * width}"
    lines.append(axis)
    x_axis_text = (f"{_format_value(x_low)}"
                   f"{' ' * max(1, width - 12)}"
                   f"{_format_value(x_high)}")
    lines.append(f"{' ' * label_width}  {x_axis_text}")
    if x_label:
        lines.append(f"[x: {x_label}]")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def histogram_chart(centers: Sequence[float], counts: Sequence[int],
                    width: int = 60, title: str = "",
                    log_counts: bool = True,
                    max_rows: int = 30) -> str:
    """Render a histogram as horizontal bars (optionally log-scaled).

    Zero-count bins are skipped; with more than ``max_rows`` populated
    bins, bins are merged pairwise until they fit.
    """
    centers = np.asarray(centers, float)
    counts = np.asarray(counts, float)
    populated = counts > 0
    centers, counts = centers[populated], counts[populated]
    if centers.size == 0:
        return f"{title}\n(no data)"
    while centers.size > max_rows:
        trim = centers.size - centers.size % 2
        centers = centers[:trim].reshape(-1, 2).mean(axis=1)
        counts = counts[:trim].reshape(-1, 2).sum(axis=1)

    values = np.log10(counts + 1.0) if log_counts else counts
    scale = values.max() if values.max() > 0 else 1.0
    lines = []
    if title:
        lines.append(title)
        lines.append(f"(bar length ~ {'log10(count+1)' if log_counts else 'count'})")
    for center, count, value in zip(centers, counts, values):
        bar = "#" * max(1, int(round(value / scale * width)))
        lines.append(f"{center:8.1f} | {bar} {int(count)}")
    return "\n".join(lines)


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.2g}"
    return f"{value:.2f}"
