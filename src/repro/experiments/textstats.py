"""The paper's in-text statistics (claims T1, T2, T3 in DESIGN.md)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.holding import HoldingTimeAnalysis
from repro.analysis.prefixes import PrefixLengthReport
from repro.core.engine import Feature, Scheme
from repro.experiments.runner import LINK_NAMES, PaperRun


@dataclass(frozen=True)
class VolatilityStats:
    """Holding-time volatility of one (link, scheme, feature) run."""

    link: str
    scheme: str
    feature: str
    mean_holding_minutes: float
    single_interval_flows: int
    flows_ever_elephant: int


def volatility_grid(run: PaperRun, feature: Feature) -> list[VolatilityStats]:
    """T1/T2: volatility stats for every link × scheme at one feature."""
    stats = []
    for link in LINK_NAMES:
        for scheme in Scheme:
            result = run.result(link, scheme, feature)
            analysis = HoldingTimeAnalysis.from_result(
                result, busy_hours=run.config.busy_hours
            )
            stats.append(VolatilityStats(
                link=link,
                scheme=scheme.value,
                feature=feature.value,
                mean_holding_minutes=analysis.mean_minutes,
                single_interval_flows=analysis.single_interval_flows,
                flows_ever_elephant=analysis.per_flow_mean_slots.size,
            ))
    return stats


@dataclass(frozen=True)
class SingleVsTwoFeature:
    """The paper's headline contrast, averaged over links and schemes."""

    single_mean_holding_minutes: float
    latent_mean_holding_minutes: float
    single_one_slot_flows: float
    latent_one_slot_flows: float

    @classmethod
    def from_run(cls, run: PaperRun) -> "SingleVsTwoFeature":
        single = volatility_grid(run, Feature.SINGLE)
        latent = volatility_grid(run, Feature.LATENT_HEAT)
        return cls(
            single_mean_holding_minutes=float(np.mean(
                [s.mean_holding_minutes for s in single]
            )),
            latent_mean_holding_minutes=float(np.mean(
                [s.mean_holding_minutes for s in latent]
            )),
            single_one_slot_flows=float(np.mean(
                [s.single_interval_flows for s in single]
            )),
            latent_one_slot_flows=float(np.mean(
                [s.single_interval_flows for s in latent]
            )),
        )

    @property
    def holding_gain(self) -> float:
        """Latent-heat holding time relative to single-feature."""
        return (self.latent_mean_holding_minutes
                / self.single_mean_holding_minutes)

    @property
    def one_slot_reduction(self) -> float:
        """Collapse factor of single-interval elephants."""
        if self.latent_one_slot_flows == 0:
            return float("inf")
        return self.single_one_slot_flows / self.latent_one_slot_flows


def prefix_reports(run: PaperRun,
                   scheme: Scheme = Scheme.AEST) -> dict[str, PrefixLengthReport]:
    """T3: prefix-length structure of the latent-heat elephants."""
    return {
        link: PrefixLengthReport.from_result(
            run.result(link, scheme, Feature.LATENT_HEAT)
        )
        for link in LINK_NAMES
    }
