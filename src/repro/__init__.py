"""repro — a reproduction of *A Pragmatic Definition of Elephants in
Internet Backbone Traffic* (Papagiannaki et al., IMC 2002).

The package implements the paper's two elephant-classification schemes
("aest" and "β-constant-load" thresholds, EWMA-smoothed) with both
decision rules (single-feature volume and two-feature "latent heat"),
plus every substrate the evaluation needs: a BGP RIB with radix-trie
longest-prefix match, a classic-pcap packet pipeline, the Crovella–Taqqu
aest tail estimator, and a calibrated synthetic backbone workload
standing in for the proprietary Sprint traces.

Quickstart::

    from repro import (
        ClassificationEngine, Feature, Scheme, west_coast_link,
    )

    link = west_coast_link(scale=0.25)       # synthetic OC-12 workload
    engine = ClassificationEngine(link.matrix)
    result = engine.run(Scheme.AEST, Feature.LATENT_HEAT)
    print(result.elephants_per_slot().mean())

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro.core import (
    AestThreshold,
    ClassificationEngine,
    ClassificationResult,
    ConstantLoadThreshold,
    Feature,
    LatentHeatClassifier,
    Scheme,
    SingleFeatureClassifier,
    ThresholdTracker,
)
from repro.errors import ReproError
from repro.flows import FlowAggregator, RateMatrix, TimeAxis, aggregate_pcap
from repro.net import Prefix
from repro.pipeline import (
    MatrixSlotSource,
    PcapPacketSource,
    StreamingAggregator,
    StreamingPipeline,
    run_stream,
)
from repro.routing import CompiledLpm, RoutingTable, generate_rib
from repro.stats import aest, hill_estimator
from repro.traffic import (
    LinkWorkload,
    east_coast_link,
    simulate_link,
    west_coast_link,
    write_pcap,
)

__version__ = "1.0.0"

__all__ = [
    "AestThreshold",
    "ClassificationEngine",
    "ClassificationResult",
    "CompiledLpm",
    "ConstantLoadThreshold",
    "Feature",
    "FlowAggregator",
    "LatentHeatClassifier",
    "LinkWorkload",
    "MatrixSlotSource",
    "PcapPacketSource",
    "Prefix",
    "RateMatrix",
    "ReproError",
    "RoutingTable",
    "Scheme",
    "SingleFeatureClassifier",
    "StreamingAggregator",
    "StreamingPipeline",
    "ThresholdTracker",
    "TimeAxis",
    "aest",
    "aggregate_pcap",
    "run_stream",
    "east_coast_link",
    "generate_rib",
    "hill_estimator",
    "simulate_link",
    "west_coast_link",
    "write_pcap",
    "__version__",
]
