"""The paper's contribution: elephant classification schemes.

Single-feature (volume) and two-feature (volume + latent heat)
classification over per-prefix bandwidth series, with the "aest" and
"β-constant-load" threshold-detection schemes and EWMA threshold
smoothing.
"""

from repro.core.alternatives import (
    CapacityFractionThreshold,
    MeanPlusStdThreshold,
    TopKThreshold,
)
from repro.core.engine import (
    ClassificationEngine,
    EngineConfig,
    Feature,
    Scheme,
    make_detector,
)
from repro.core.latent_heat import (
    DEFAULT_WINDOW_SLOTS,
    LatentHeatClassifier,
    latent_heat_series,
)
from repro.core.result import ClassificationResult
from repro.core.single_feature import SingleFeatureClassifier
from repro.core.smoothing import (
    DEFAULT_ALPHA,
    SlotThreshold,
    ThresholdSeries,
    ThresholdTracker,
)
from repro.core.streaming import OnlineClassifier, SlotVerdict
from repro.core.states import (
    HoldingTimeSummary,
    mean_holding_times,
    run_lengths,
    total_elephant_slots,
    transition_counts,
)
from repro.core.thresholds import (
    AestThreshold,
    ConstantLoadThreshold,
    QuantileThreshold,
    ThresholdDetector,
)

__all__ = [
    "AestThreshold",
    "CapacityFractionThreshold",
    "ClassificationEngine",
    "ClassificationResult",
    "ConstantLoadThreshold",
    "DEFAULT_ALPHA",
    "DEFAULT_WINDOW_SLOTS",
    "EngineConfig",
    "Feature",
    "HoldingTimeSummary",
    "LatentHeatClassifier",
    "MeanPlusStdThreshold",
    "OnlineClassifier",
    "QuantileThreshold",
    "Scheme",
    "SingleFeatureClassifier",
    "SlotThreshold",
    "SlotVerdict",
    "ThresholdDetector",
    "ThresholdSeries",
    "TopKThreshold",
    "ThresholdTracker",
    "latent_heat_series",
    "make_detector",
    "mean_holding_times",
    "run_lengths",
    "total_elephant_slots",
    "transition_counts",
]
