"""Single-feature (volume-only) classification.

A flow is an elephant in slot ``t`` iff its bandwidth exceeds the
smoothed threshold: ``x_i(t) > B̄_th(t)``. This is the paper's first
scheme — simple, online, and (as Section II shows) volatile: elephants
hold their state for only 20–40 minutes and over a thousand flows per
link are elephants for a single slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.result import ClassificationResult
from repro.core.smoothing import DEFAULT_ALPHA, ThresholdTracker
from repro.core.thresholds import ThresholdDetector
from repro.flows.matrix import RateMatrix

#: Name recorded in results produced by this classifier.
CLASSIFIER_NAME = "single-feature"


@dataclass
class SingleFeatureClassifier:
    """Classify every slot by thresholding bandwidth alone."""

    detector: ThresholdDetector
    alpha: float = DEFAULT_ALPHA
    name: str = field(default=CLASSIFIER_NAME, init=False)

    def classify(self, matrix: RateMatrix) -> ClassificationResult:
        """Run threshold detection + EWMA + per-slot comparison."""
        tracker = ThresholdTracker(self.detector, alpha=self.alpha)
        thresholds = tracker.run(matrix.rates)
        mask = matrix.rates > thresholds.smoothed[None, :]
        return ClassificationResult(
            matrix=matrix,
            thresholds=thresholds,
            elephant_mask=mask,
            classifier=self.name,
        )
