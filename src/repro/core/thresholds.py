"""Threshold-detection phase: the per-slot separation bandwidth.

The paper proposes two ways to pick the raw threshold ``B_th(t)`` from a
slot's flow-bandwidth sample:

- :class:`AestThreshold` — "the first point after which power-law
  behaviour can be witnessed" in the bandwidth distribution, from the
  aest scaling estimator.
- :class:`ConstantLoadThreshold` — the bandwidth above which flows
  jointly carry a target fraction β of the slot's traffic
  ("β-constant load", β = 0.8 in the paper).

Detectors are stateless and may raise
:class:`~repro.errors.TailNotFoundError` /
:class:`~repro.errors.InsufficientDataError`; fallback policy lives in
:class:`repro.core.smoothing.ThresholdTracker` so that every scheme
shares the same, explicitly accounted fallback behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.errors import InsufficientDataError
from repro.stats.aest import AestConfig, aest
from repro.stats.ecdf import ShareCurve


class ThresholdDetector(Protocol):
    """Anything that can turn a slot's rates into a separation threshold."""

    name: str

    def detect(self, rates: np.ndarray) -> float:
        """Raw threshold for one slot's flow bandwidths (positive only)."""
        ...


def positive_rates(rates: np.ndarray) -> np.ndarray:
    """Filter a slot's rate vector down to the active flows."""
    rates = np.asarray(rates, dtype=float)
    return rates[rates > 0]


@dataclass(frozen=True)
class ConstantLoadThreshold:
    """The "β-constant-load" detector.

    The threshold is placed so that flows *exceeding* it account for the
    fraction ``beta`` of the slot's total traffic: we find the smallest
    top-``k`` set reaching the share, then put the threshold midway
    between the ``k``-th largest rate and the next one down, so the
    strict comparison ``x > B_th`` selects exactly that set.
    """

    beta: float = 0.8
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.beta < 1.0:
            raise ValueError(f"beta {self.beta} outside (0, 1)")
        if not self.name:
            object.__setattr__(self, "name", f"{self.beta:g}-constant-load")

    def detect(self, rates: np.ndarray) -> float:
        active = positive_rates(rates)
        if active.size == 0:
            raise InsufficientDataError("no active flows in slot")
        curve = ShareCurve.from_rates(active)
        k = curve.flows_for_share(self.beta)
        kth = curve.rates_desc[k - 1]
        next_down = curve.rates_desc[k] if k < curve.rates_desc.size else 0.0
        return float((kth + next_down) / 2.0)


@dataclass(frozen=True)
class AestThreshold:
    """The "aest" detector: the onset of the power-law tail.

    ``config`` tunes the underlying estimator. Raises
    :class:`~repro.errors.TailNotFoundError` when the slot's distribution
    shows no consistent scaling region — the tracker then applies its
    fallback policy.

    The default probes slightly deeper into the distribution
    (``tail_fraction = 0.16``) than the bare estimator: threshold
    detection wants the *onset* of scaling, which for slot-wise flow
    bandwidths sits near the top decile, and the acceptance criteria
    (parallelism + slope match) still reject body points.
    """

    config: AestConfig = field(
        default_factory=lambda: AestConfig(tail_fraction=0.16)
    )
    name: str = field(default="aest", compare=False)

    def detect(self, rates: np.ndarray) -> float:
        active = positive_rates(rates)
        result = aest(active, config=self.config)
        return float(result.tail_onset)


@dataclass(frozen=True)
class QuantileThreshold:
    """A byte-weighted quantile detector, used as fallback and baseline.

    The threshold is the bandwidth above which the *byte-weighted* share
    of traffic is ``1 - quantile``; e.g. ``quantile=0.2`` places 80 % of
    bytes above — a crude constant-load approximation that needs no
    sorting of shares and always succeeds.
    """

    quantile: float = 0.2
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile {self.quantile} outside (0, 1)")
        if not self.name:
            object.__setattr__(
                self, "name", f"byte-quantile-{self.quantile:g}"
            )

    def detect(self, rates: np.ndarray) -> float:
        active = positive_rates(rates)
        if active.size == 0:
            raise InsufficientDataError("no active flows in slot")
        order = np.argsort(active)
        sorted_rates = active[order]
        cumulative = np.cumsum(sorted_rates)
        target = self.quantile * cumulative[-1]
        index = int(np.searchsorted(cumulative, target, side="left"))
        index = min(index, sorted_rates.size - 1)
        return float(sorted_rates[index])
