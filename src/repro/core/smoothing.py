"""Threshold-update phase: EWMA smoothing with explicit fallbacks.

The paper smooths the detected threshold across slots so that elephants
are not reclassified by measurement noise in the threshold itself:

    ``B̄_th(t+1) = α · B̄_th(t) + (1 − α) · B_th(t)``, α = 0.9.

:class:`ThresholdTracker` implements the online protocol: the smoothed
threshold used to classify slot ``t`` depends only on raw detections
from slots ``< t`` (slot 0 is classified with its own raw detection, as
some bootstrap is unavoidable). When a detector fails on a slot (aest
finds no tail), the tracker substitutes the previous raw threshold —
or a byte-quantile fallback when there is no history — and counts the
event, so experiments can report how often the scheme needed help.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ClassificationError, EstimatorError
from repro.core.thresholds import QuantileThreshold, ThresholdDetector

#: The paper's smoothing weight on history.
DEFAULT_ALPHA = 0.9


@dataclass
class SlotThreshold:
    """Thresholds attached to one slot."""

    slot: int
    raw: float
    smoothed: float
    fallback_used: bool


@dataclass
class ThresholdTracker:
    """Stateful detect-then-smooth pipeline over consecutive slots."""

    detector: ThresholdDetector
    alpha: float = DEFAULT_ALPHA
    fallback: ThresholdDetector = field(default_factory=QuantileThreshold)

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha < 1.0:
            raise ClassificationError(f"alpha {self.alpha} outside [0, 1)")
        self._pending_smoothed: float | None = None
        self._last_raw: float | None = None
        self._slot = 0
        self.fallback_slots: list[int] = []

    @property
    def num_fallbacks(self) -> int:
        """How many slots needed the fallback detector / history."""
        return len(self.fallback_slots)

    @property
    def has_history(self) -> bool:
        """Whether any slot has produced a raw detection yet."""
        return self._last_raw is not None

    def observe(self, rates: np.ndarray) -> SlotThreshold:
        """Process one slot's rates; returns its thresholds.

        The returned ``smoothed`` value is the classification threshold
        for *this* slot (computed from past raw detections); the ``raw``
        value is this slot's detection, which feeds the EWMA for the
        next slot.
        """
        fallback_used = False
        try:
            raw = float(self.detector.detect(rates))
        except EstimatorError:
            fallback_used = True
            self.fallback_slots.append(self._slot)
            if self._last_raw is not None:
                raw = self._last_raw
            else:
                raw = float(self.fallback.detect(rates))
        if raw <= 0 or not np.isfinite(raw):
            raise ClassificationError(
                f"detector {self.detector.name!r} produced bad threshold "
                f"{raw!r} at slot {self._slot}"
            )

        if self._pending_smoothed is None:
            smoothed = raw  # bootstrap: slot 0 classified by its own raw
        else:
            smoothed = self._pending_smoothed

        # B̄(t+1) = alpha * B̄(t) + (1 - alpha) * raw(t)
        self._pending_smoothed = (self.alpha * smoothed
                                  + (1.0 - self.alpha) * raw)
        self._last_raw = raw
        result = SlotThreshold(self._slot, raw, smoothed, fallback_used)
        self._slot += 1
        return result

    def run(self, rate_columns: np.ndarray) -> "ThresholdSeries":
        """Process a whole ``(flows, slots)`` matrix of rates."""
        if rate_columns.ndim != 2:
            raise ClassificationError("expected a 2-D rate matrix")
        slots = [self.observe(rate_columns[:, t])
                 for t in range(rate_columns.shape[1])]
        return ThresholdSeries.from_slots(slots, self.detector.name,
                                          self.alpha)


@dataclass(frozen=True)
class ThresholdSeries:
    """Raw and smoothed threshold series for a whole run."""

    scheme: str
    alpha: float
    raw: np.ndarray
    smoothed: np.ndarray
    fallback_slots: tuple[int, ...]

    @classmethod
    def from_slots(cls, slots: list[SlotThreshold], scheme: str,
                   alpha: float) -> "ThresholdSeries":
        return cls(
            scheme=scheme,
            alpha=alpha,
            raw=np.array([s.raw for s in slots]),
            smoothed=np.array([s.smoothed for s in slots]),
            fallback_slots=tuple(s.slot for s in slots if s.fallback_used),
        )

    @property
    def num_slots(self) -> int:
        return self.raw.size

    @property
    def fallback_rate(self) -> float:
        """Fraction of slots where the detector needed the fallback."""
        if self.num_slots == 0:
            return 0.0
        return len(self.fallback_slots) / self.num_slots

    def smoothness(self) -> float:
        """Mean absolute relative step of the smoothed series.

        The paper chose α = 0.9 because it made the threshold
        "sufficiently smooth"; this is the metric our α-ablation sweeps.
        """
        if self.num_slots < 2:
            return 0.0
        steps = np.abs(np.diff(self.smoothed))
        baseline = np.maximum(self.smoothed[:-1], 1e-12)
        return float((steps / baseline).mean())
