"""Online, slot-at-a-time classification.

The batch classifiers in :mod:`repro.core.single_feature` and
:mod:`repro.core.latent_heat` consume a whole rate matrix; a deployed
traffic-engineering system sees one measurement slot at a time. This
module provides that interface with identical semantics: feeding the
columns of a matrix through :class:`OnlineClassifier` produces exactly
the masks the batch classifiers produce (asserted in the test suite).

The latent-heat state per flow is a running window sum maintained with
a ring buffer of per-slot deviations, so memory is
``O(num_flows × window)`` and each slot costs ``O(num_flows)`` plus one
threshold detection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClassificationError
from repro.core.latent_heat import DEFAULT_WINDOW_SLOTS
from repro.core.smoothing import DEFAULT_ALPHA, SlotThreshold, ThresholdTracker
from repro.core.thresholds import ThresholdDetector


@dataclass(frozen=True)
class SlotVerdict:
    """The outcome of one observed slot."""

    slot: int
    thresholds: SlotThreshold
    elephant_mask: np.ndarray
    latent_heat: np.ndarray | None

    @property
    def num_elephants(self) -> int:
        """Number of flows classified as elephants in this slot."""
        return int(self.elephant_mask.sum())

    def elephants(self) -> np.ndarray:
        """Row indices of this slot's elephants."""
        return np.flatnonzero(self.elephant_mask)


class OnlineClassifier:
    """Streaming classifier over a growable flow population.

    ``num_flows`` sets the initial population (flow identity is
    positional, as in :class:`~repro.flows.matrix.RateMatrix`);
    :meth:`grow` appends rows mid-stream when new flows are discovered,
    without disturbing existing rows. With ``window=1`` the decision
    rule degenerates to ``x > B̄`` only when using latent heat over a
    single slot — pass ``use_latent_heat=False`` for the exact
    single-feature rule.
    """

    def __init__(
        self,
        detector: ThresholdDetector,
        num_flows: int,
        alpha: float = DEFAULT_ALPHA,
        window: int = DEFAULT_WINDOW_SLOTS,
        use_latent_heat: bool = True,
    ) -> None:
        if num_flows < 1:
            raise ClassificationError("num_flows must be >= 1")
        if window < 1:
            raise ClassificationError("window must be >= 1")
        self.num_flows = num_flows
        self.window = window
        self.use_latent_heat = use_latent_heat
        self._tracker = ThresholdTracker(detector, alpha=alpha)
        self._deviation_ring = np.zeros((num_flows, window))
        self._heat = np.zeros(num_flows)
        self._smoothed_ring = np.zeros(window)
        self._slot = 0

    @property
    def slots_observed(self) -> int:
        """How many slots have been consumed."""
        return self._slot

    def grow(self, num_flows: int) -> None:
        """Extend the population to ``num_flows``, appending new rows.

        Existing flows keep their row indices and all their state — the
        positional identity guarantee dynamic sources rely on. Each new
        row is initialised as if the flow had been present with zero
        bandwidth since slot 0: its deviation ring is backfilled with
        ``-B̄_th(t)`` for the observed slots still inside the window, so
        its latent heat (and therefore every future verdict) is exactly
        what the batch classifier computes for an all-zero row. The
        population can only grow; shrinking would reassign identities.
        """
        if num_flows < self.num_flows:
            raise ClassificationError(
                f"cannot shrink population from {self.num_flows} "
                f"to {num_flows}"
            )
        extra = num_flows - self.num_flows
        if extra == 0:
            return
        backfill = np.zeros(self.window)
        for age in range(1, min(self._slot, self.window) + 1):
            position = (self._slot - age) % self.window
            backfill[position] = -self._smoothed_ring[position]
        self._deviation_ring = np.vstack(
            [self._deviation_ring, np.tile(backfill, (extra, 1))]
        )
        self._heat = np.concatenate(
            [self._heat, np.full(extra, backfill.sum())]
        )
        self.num_flows = num_flows

    def observe_slot(
        self,
        rates: np.ndarray,
        exclude_rows: np.ndarray | None = None,
        suppress_rows: np.ndarray | None = None,
    ) -> SlotVerdict:
        """Consume one slot's flow bandwidths and classify it.

        ``exclude_rows`` names rows that are *accounting artifacts*
        rather than flows — for instance the residual row a bounded
        aggregation backend emits for untracked traffic. Excluded rows
        are withheld from threshold detection (their bandwidth is not a
        single flow's, so letting it anchor the elephant threshold
        would distort the cut) and are never classified as elephants.
        Their per-row state evolves as an all-zero flow, which keeps
        row identities aligned with the frame population.

        ``suppress_rows`` names rows whose *evidence* is too thin to
        trust this slot — the sampling variance guard: a flow seen in
        too few sampled packets may owe its whole (inverted) bandwidth
        to one lucky draw. Unlike exclusion, suppression is
        verdict-only: the rows' rates still feed threshold detection
        and their per-row state evolves normally (the estimates are
        unbiased, just noisy); they simply cannot be elephants in this
        slot's verdict.
        """
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (self.num_flows,):
            raise ClassificationError(
                f"expected {self.num_flows} rates, got shape {rates.shape}"
            )
        excluded: np.ndarray | None = None
        unexcluded = rates
        if exclude_rows is not None:
            excluded = np.asarray(exclude_rows, dtype=np.int64)
            excluded = excluded[
                (excluded >= 0) & (excluded < self.num_flows)
            ]
            if excluded.size:
                rates = rates.copy()
                rates[excluded] = 0.0
        if (
            excluded is not None
            and excluded.size
            and not rates.any()
            and not self._tracker.has_history
        ):
            # The exclusion zeroed the whole slot (a sketch frame whose
            # traffic is all residual) before any detection history
            # exists. Bootstrap the threshold from the *unexcluded*
            # rates: the residual is real link traffic, so detection
            # succeeds with a positive threshold (keeping the series
            # invariant raw > 0) and no row can clear it — zero
            # elephants, and the EWMA starts from link level. A slot
            # that arrives genuinely empty still raises from the
            # detector, exactly like the batch engine.
            thresholds = self._tracker.observe(unexcluded)
        else:
            thresholds = self._tracker.observe(rates)
        self._smoothed_ring[self._slot % self.window] = thresholds.smoothed
        deviations = rates - thresholds.smoothed

        if self.use_latent_heat:
            ring_slot = self._slot % self.window
            self._heat += deviations - self._deviation_ring[:, ring_slot]
            self._deviation_ring[:, ring_slot] = deviations
            mask = self._heat > 0.0
            heat = self._heat.copy()
        else:
            mask = rates > thresholds.smoothed
            heat = None

        if excluded is not None and excluded.size:
            mask[excluded] = False
        if suppress_rows is not None:
            suppressed = np.asarray(suppress_rows, dtype=np.int64)
            suppressed = suppressed[
                (suppressed >= 0) & (suppressed < self.num_flows)
            ]
            if suppressed.size:
                mask[suppressed] = False

        verdict = SlotVerdict(
            slot=self._slot,
            thresholds=thresholds,
            elephant_mask=mask,
            latent_heat=heat,
        )
        self._slot += 1
        return verdict

    def run(self, rate_columns: np.ndarray) -> list[SlotVerdict]:
        """Feed every column of a ``(flows, slots)`` matrix in order."""
        if rate_columns.ndim != 2 or rate_columns.shape[0] != self.num_flows:
            raise ClassificationError(
                f"expected a ({self.num_flows}, slots) matrix"
            )
        return [
            self.observe_slot(rate_columns[:, t])
            for t in range(rate_columns.shape[1])
        ]
