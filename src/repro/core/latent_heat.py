"""Two-feature classification with the "latent heat" metric.

Latent heat accumulates the *signed distance* between a flow's bandwidth
and the smoothed threshold over the past window (12 slots = 1 hour at
the default 5-minute slots):

    ``LH_i(t) = Σ_{k = t−W+1 … t} ( x_i(k) − B̄_th(k) )``

and the flow is an elephant iff ``LH_i(t) > 0``. A transient burst above
the threshold cannot outweigh an hour of sitting below it, and a
transient dip cannot erase an hour of sitting above: the metric "reacts
to transient moves above/below the threshold with sufficient latency",
filtering exactly the reclassification churn that makes the
single-feature scheme useless for traffic engineering.

During warm-up (``t < W − 1``) the sum runs over the slots available so
far, so classification is defined from slot 0 (with single-slot
behaviour at ``t = 0``, converging to the full window by ``t = W − 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ClassificationError
from repro.core.result import ClassificationResult
from repro.core.smoothing import DEFAULT_ALPHA, ThresholdTracker
from repro.core.thresholds import ThresholdDetector
from repro.flows.matrix import RateMatrix

#: The paper's window: 12 slots of 5 minutes — "the previous hour".
DEFAULT_WINDOW_SLOTS = 12

#: Name recorded in results produced by this classifier.
CLASSIFIER_NAME = "latent-heat"


def latent_heat_series(rates: np.ndarray, smoothed_thresholds: np.ndarray,
                       window: int) -> np.ndarray:
    """Latent heat of every flow at every slot.

    ``rates`` is ``(flows, slots)``; ``smoothed_thresholds`` is
    ``(slots,)``. Returns the ``(flows, slots)`` latent-heat matrix,
    using a truncated window during warm-up.
    """
    if window < 1:
        raise ClassificationError(f"window {window} must be >= 1")
    if rates.ndim != 2:
        raise ClassificationError("rates must be 2-D")
    if smoothed_thresholds.shape != (rates.shape[1],):
        raise ClassificationError("threshold series length mismatch")
    deviations = rates - smoothed_thresholds[None, :]
    cumulative = np.cumsum(deviations, axis=1)
    heat = cumulative.copy()
    if rates.shape[1] > window:
        heat[:, window:] = cumulative[:, window:] - cumulative[:, :-window]
    return heat


@dataclass
class LatentHeatClassifier:
    """Classify using threshold distance accumulated over a window."""

    detector: ThresholdDetector
    alpha: float = DEFAULT_ALPHA
    window: int = DEFAULT_WINDOW_SLOTS
    name: str = field(default=CLASSIFIER_NAME, init=False)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ClassificationError(
                f"latent-heat window {self.window} must be >= 1"
            )

    def classify(self, matrix: RateMatrix) -> ClassificationResult:
        """Run detection + smoothing, then threshold the latent heat."""
        tracker = ThresholdTracker(self.detector, alpha=self.alpha)
        thresholds = tracker.run(matrix.rates)
        heat = latent_heat_series(matrix.rates, thresholds.smoothed,
                                  self.window)
        mask = heat > 0.0
        return ClassificationResult(
            matrix=matrix,
            thresholds=thresholds,
            elephant_mask=mask,
            classifier=self.name,
        )
