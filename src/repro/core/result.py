"""The result container every classifier produces."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClassificationError
from repro.core.smoothing import ThresholdSeries
from repro.core.states import HoldingTimeSummary
from repro.flows.matrix import RateMatrix


@dataclass(frozen=True)
class ClassificationResult:
    """One classifier's verdicts over a rate matrix.

    ``elephant_mask[i, t]`` is ``True`` when flow ``i`` was classified
    as an elephant in slot ``t``. ``thresholds`` carries the raw and
    smoothed threshold series that produced the mask, and ``classifier``
    names the decision rule ("single-feature" or "latent-heat").
    """

    matrix: RateMatrix
    thresholds: ThresholdSeries
    elephant_mask: np.ndarray
    classifier: str

    def __post_init__(self) -> None:
        expected = (self.matrix.num_flows, self.matrix.num_slots)
        if self.elephant_mask.shape != expected:
            raise ClassificationError(
                f"mask shape {self.elephant_mask.shape} != {expected}"
            )
        if self.elephant_mask.dtype != np.bool_:
            raise ClassificationError("elephant mask must be boolean")
        if self.thresholds.num_slots != self.matrix.num_slots:
            raise ClassificationError("threshold series length mismatch")

    @property
    def scheme(self) -> str:
        """Name of the threshold-detection scheme."""
        return self.thresholds.scheme

    @property
    def label(self) -> str:
        """Human-readable run label, e.g. ``"aest latent-heat"``."""
        return f"{self.scheme} {self.classifier}"

    # ------------------------------------------------------------------
    # the paper's per-slot series
    # ------------------------------------------------------------------

    def elephants_per_slot(self) -> np.ndarray:
        """Number of elephants in each slot (Fig. 1(a) series)."""
        return self.elephant_mask.sum(axis=0)

    def traffic_fraction_per_slot(self) -> np.ndarray:
        """Fraction of traffic apportioned to elephants (Fig. 1(b)).

        Slots with zero total traffic yield 0 by convention.
        """
        total = self.matrix.total_per_slot()
        elephant_traffic = np.where(
            self.elephant_mask, self.matrix.rates, 0.0
        ).sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            fraction = np.where(total > 0, elephant_traffic / total, 0.0)
        return fraction

    def holding_summary(self) -> HoldingTimeSummary:
        """Holding-time statistics over the full horizon."""
        return HoldingTimeSummary.from_mask(self.elephant_mask)

    def ever_elephant_indices(self) -> np.ndarray:
        """Row indices of flows that were elephants at least once."""
        return np.flatnonzero(self.elephant_mask.any(axis=1))

    def restrict_slots(self, first_slot: int,
                       num_slots: int) -> "ClassificationResult":
        """Result restricted to a slot window (e.g. the busy period)."""
        sub_matrix = self.matrix.window(first_slot, num_slots)
        sub_thresholds = ThresholdSeries(
            scheme=self.thresholds.scheme,
            alpha=self.thresholds.alpha,
            raw=self.thresholds.raw[first_slot:first_slot + num_slots],
            smoothed=self.thresholds.smoothed[
                first_slot:first_slot + num_slots
            ],
            fallback_slots=tuple(
                s - first_slot for s in self.thresholds.fallback_slots
                if first_slot <= s < first_slot + num_slots
            ),
        )
        return ClassificationResult(
            matrix=sub_matrix,
            thresholds=sub_thresholds,
            elephant_mask=self.elephant_mask[
                :, first_slot:first_slot + num_slots
            ].copy(),
            classifier=self.classifier,
        )
