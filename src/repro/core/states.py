"""The induced two-state process and its run statistics.

The classification scheme "induces the following underlying two-state
process on each flow": elephant when above the threshold, mouse when
below. Holding times — the lengths of maximal elephant runs — are the
paper's volatility measure; Fig. 1(c) histograms the per-flow *average*
holding time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClassificationError


def run_lengths(states: np.ndarray) -> np.ndarray:
    """Lengths of maximal ``True`` runs in a 1-D boolean series.

    ``run_lengths([T, T, F, T]) == [2, 1]``; an all-``False`` series
    yields an empty array.
    """
    states = np.asarray(states, dtype=bool)
    if states.ndim != 1:
        raise ClassificationError("run_lengths expects a 1-D series")
    if states.size == 0:
        return np.empty(0, dtype=int)
    padded = np.concatenate(([False], states, [False]))
    changes = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(changes == 1)
    ends = np.flatnonzero(changes == -1)
    return ends - starts


def mean_holding_times(mask: np.ndarray) -> np.ndarray:
    """Per-flow average elephant holding time, in slots.

    ``mask`` is the ``(flows, slots)`` elephant matrix. Flows never in
    the elephant state get ``NaN`` (they have no holding time, and
    Fig. 1(c) excludes them).
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ClassificationError("expected a (flows, slots) mask")
    out = np.full(mask.shape[0], np.nan)
    for row in range(mask.shape[0]):
        runs = run_lengths(mask[row])
        if runs.size:
            out[row] = runs.mean()
    return out


def total_elephant_slots(mask: np.ndarray) -> np.ndarray:
    """Per-flow total number of slots spent in the elephant state."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ClassificationError("expected a (flows, slots) mask")
    return mask.sum(axis=1)


def transition_counts(mask: np.ndarray) -> np.ndarray:
    """Per-flow number of state changes (either direction)."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ClassificationError("expected a (flows, slots) mask")
    if mask.shape[1] < 2:
        return np.zeros(mask.shape[0], dtype=int)
    return np.abs(np.diff(mask.astype(np.int8), axis=1)).sum(axis=1)


@dataclass(frozen=True)
class HoldingTimeSummary:
    """Aggregate holding-time statistics over a flow population."""

    num_flows_ever_elephant: int
    mean_holding_slots: float
    median_holding_slots: float
    single_slot_flows: int
    max_holding_slots: float

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "HoldingTimeSummary":
        """Summarise the elephant mask of one classification run.

        ``single_slot_flows`` counts flows whose *every* elephant episode
        lasted exactly one slot (average holding time 1) — the population
        the paper says exceeds 1000 under single-feature classification
        and collapses to ~50 with latent heat.
        """
        holding = mean_holding_times(mask)
        ever = holding[~np.isnan(holding)]
        if ever.size == 0:
            return cls(0, float("nan"), float("nan"), 0, float("nan"))
        return cls(
            num_flows_ever_elephant=int(ever.size),
            mean_holding_slots=float(ever.mean()),
            median_holding_slots=float(np.median(ever)),
            single_slot_flows=int((ever == 1.0).sum()),
            max_holding_slots=float(ever.max()),
        )

    def mean_holding_minutes(self, slot_seconds: float) -> float:
        """Mean holding time converted to minutes."""
        return self.mean_holding_slots * slot_seconds / 60.0
