"""Alternative threshold schemes from the surrounding literature.

The paper evaluates "aest" and "β-constant-load"; contemporaneous
systems and later work used other separation rules. These detectors
plug into the same :class:`~repro.core.smoothing.ThresholdTracker` /
classifier machinery, enabling the scheme-comparison extension bench:

- :class:`TopKThreshold` — keep a fixed number of flows (routers have
  a fixed number of TE tunnels or filters to spend).
- :class:`CapacityFractionThreshold` — an absolute cutoff at a fraction
  of link capacity (the AutoFocus/packet-sampling tradition: "a flow
  matters when it exceeds x% of the link").
- :class:`MeanPlusStdThreshold` — a dispersion rule: mean plus ``k``
  standard deviations of the active flows' bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InsufficientDataError
from repro.core.thresholds import positive_rates


@dataclass(frozen=True)
class TopKThreshold:
    """Separate the ``k`` largest active flows from everyone else."""

    k: int = 500
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k {self.k} must be >= 1")
        if not self.name:
            object.__setattr__(self, "name", f"top-{self.k}")

    def detect(self, rates: np.ndarray) -> float:
        active = positive_rates(rates)
        if active.size == 0:
            raise InsufficientDataError("no active flows in slot")
        if active.size <= self.k:
            # Fewer flows than k: everything is an elephant; put the
            # threshold just below the smallest active rate.
            return float(active.min() / 2.0)
        ordered = np.sort(active)[::-1]
        kth = ordered[self.k - 1]
        next_down = ordered[self.k]
        return float((kth + next_down) / 2.0)


@dataclass(frozen=True)
class CapacityFractionThreshold:
    """A fixed cutoff at ``fraction`` of the link capacity."""

    capacity_bps: float
    fraction: float = 0.001
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(f"fraction {self.fraction} outside (0, 1)")
        if not self.name:
            object.__setattr__(
                self, "name", f"capacity-{self.fraction:g}"
            )

    def detect(self, rates: np.ndarray) -> float:
        active = positive_rates(rates)
        if active.size == 0:
            raise InsufficientDataError("no active flows in slot")
        return float(self.capacity_bps * self.fraction)


@dataclass(frozen=True)
class MeanPlusStdThreshold:
    """Mean plus ``k`` standard deviations of the active bandwidths.

    The classic outlier rule. On heavy-tailed slot distributions the
    standard deviation is dominated by the top flows, which makes this
    scheme erratic — a behaviour the comparison bench makes visible.
    """

    k: float = 3.0
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k {self.k} must be non-negative")
        if not self.name:
            object.__setattr__(self, "name", f"mean+{self.k:g}std")

    def detect(self, rates: np.ndarray) -> float:
        active = positive_rates(rates)
        if active.size == 0:
            raise InsufficientDataError("no active flows in slot")
        threshold = float(active.mean() + self.k * active.std())
        if threshold <= 0:
            raise InsufficientDataError("degenerate slot distribution")
        return threshold
