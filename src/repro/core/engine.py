"""The classification engine: scheme × classifier orchestration.

Experiments in the paper cross two threshold schemes ("aest",
"0.8-constant-load") with two decision rules (single-feature,
latent-heat). The engine runs any such combination over a rate matrix
and hands back uniformly shaped results keyed by run label.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ClassificationError
from repro.core.latent_heat import DEFAULT_WINDOW_SLOTS, LatentHeatClassifier
from repro.core.result import ClassificationResult
from repro.core.single_feature import SingleFeatureClassifier
from repro.core.smoothing import DEFAULT_ALPHA
from repro.core.thresholds import (
    AestThreshold,
    ConstantLoadThreshold,
    ThresholdDetector,
)
from repro.flows.matrix import RateMatrix


class Scheme(enum.Enum):
    """The paper's two threshold-detection schemes."""

    AEST = "aest"
    CONSTANT_LOAD = "constant-load"


class Feature(enum.Enum):
    """The paper's two decision rules."""

    SINGLE = "single-feature"
    LATENT_HEAT = "latent-heat"


def make_detector(scheme: Scheme, beta: float = 0.8) -> ThresholdDetector:
    """Instantiate the detector for a scheme (β applies to constant load)."""
    if scheme is Scheme.AEST:
        return AestThreshold()
    if scheme is Scheme.CONSTANT_LOAD:
        return ConstantLoadThreshold(beta=beta)
    raise ClassificationError(f"unknown scheme {scheme!r}")


@dataclass
class EngineConfig:
    """Knobs shared by every run the engine performs."""

    alpha: float = DEFAULT_ALPHA
    beta: float = 0.8
    window: int = DEFAULT_WINDOW_SLOTS

    def validate(self) -> None:
        if not 0.0 <= self.alpha < 1.0:
            raise ClassificationError(f"alpha {self.alpha} outside [0, 1)")
        if not 0.0 < self.beta < 1.0:
            raise ClassificationError(f"beta {self.beta} outside (0, 1)")
        if self.window < 1:
            raise ClassificationError(f"window {self.window} must be >= 1")


@dataclass
class ClassificationEngine:
    """Run scheme × feature combinations over one rate matrix."""

    matrix: RateMatrix
    config: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        self.config.validate()

    def run(self, scheme: Scheme, feature: Feature) -> ClassificationResult:
        """Classify with one scheme/feature combination."""
        detector = make_detector(scheme, beta=self.config.beta)
        if feature is Feature.SINGLE:
            classifier = SingleFeatureClassifier(
                detector, alpha=self.config.alpha
            )
        elif feature is Feature.LATENT_HEAT:
            classifier = LatentHeatClassifier(
                detector, alpha=self.config.alpha, window=self.config.window
            )
        else:
            raise ClassificationError(f"unknown feature {feature!r}")
        return classifier.classify(self.matrix)

    def run_all(self, features: tuple[Feature, ...] = (Feature.LATENT_HEAT,)
                ) -> dict[str, ClassificationResult]:
        """Run both schemes for the requested features, keyed by label."""
        results: dict[str, ClassificationResult] = {}
        for scheme in Scheme:
            for feature in features:
                result = self.run(scheme, feature)
                results[result.label] = result
        return results

    def run_streaming(self, scheme: Scheme, feature: Feature,
                      backend=None) -> ClassificationResult:
        """Classify through the streaming pipeline instead of in batch.

        The matrix replays column by column through the online
        classifier; the reassembled result is identical to :meth:`run`
        (asserted in the test suite). This is the batch-as-a-wrapper
        entry point — useful when validating streaming deployments
        against recorded matrices.

        ``backend`` (an
        :class:`~repro.pipeline.backends.AggregationBackend`) replays
        the matrix under that backend's memory bound instead: the
        result covers the tracked population plus a residual row, so it
        approximates :meth:`run` with O(capacity) flow state.
        """
        # Imported here: repro.pipeline sits above the core layer.
        from repro.pipeline.engine import classify_matrix_streaming
        return classify_matrix_streaming(
            self.matrix, scheme=scheme, feature=feature, config=self.config,
            backend=backend,
        )

    def run_paper_grid(self) -> dict[str, ClassificationResult]:
        """The full 2×2 grid the paper's evaluation uses."""
        return self.run_all(features=(Feature.SINGLE, Feature.LATENT_HEAT))
