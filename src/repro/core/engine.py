"""The classification engine: scheme × classifier orchestration.

Experiments in the paper cross two threshold schemes ("aest",
"0.8-constant-load") with two decision rules (single-feature,
latent-heat). The engine runs any such combination over a rate matrix
and hands back uniformly shaped results keyed by run label.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ClassificationError
from repro.core.latent_heat import DEFAULT_WINDOW_SLOTS, LatentHeatClassifier
from repro.core.result import ClassificationResult
from repro.core.single_feature import SingleFeatureClassifier
from repro.core.smoothing import DEFAULT_ALPHA
from repro.core.thresholds import (
    AestThreshold,
    ConstantLoadThreshold,
    ThresholdDetector,
)
from repro.flows.matrix import RateMatrix


class Scheme(enum.Enum):
    """The paper's two threshold-detection schemes."""

    AEST = "aest"
    CONSTANT_LOAD = "constant-load"


class Feature(enum.Enum):
    """The paper's two decision rules."""

    SINGLE = "single-feature"
    LATENT_HEAT = "latent-heat"


def make_detector(scheme: Scheme, beta: float = 0.8) -> ThresholdDetector:
    """Instantiate the detector for a scheme (β applies to constant load)."""
    if scheme is Scheme.AEST:
        return AestThreshold()
    if scheme is Scheme.CONSTANT_LOAD:
        return ConstantLoadThreshold(beta=beta)
    raise ClassificationError(f"unknown scheme {scheme!r}")


@dataclass
class EngineConfig:
    """Knobs shared by every run the engine performs."""

    alpha: float = DEFAULT_ALPHA
    beta: float = 0.8
    window: int = DEFAULT_WINDOW_SLOTS

    def validate(self) -> None:
        if not 0.0 <= self.alpha < 1.0:
            raise ClassificationError(f"alpha {self.alpha} outside [0, 1)")
        if not 0.0 < self.beta < 1.0:
            raise ClassificationError(f"beta {self.beta} outside (0, 1)")
        if self.window < 1:
            raise ClassificationError(f"window {self.window} must be >= 1")


@dataclass
class ClassificationEngine:
    """Run scheme × feature combinations over one rate matrix."""

    matrix: RateMatrix
    config: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        self.config.validate()

    def run(self, scheme: Scheme, feature: Feature) -> ClassificationResult:
        """Classify with one scheme/feature combination."""
        detector = make_detector(scheme, beta=self.config.beta)
        if feature is Feature.SINGLE:
            classifier = SingleFeatureClassifier(
                detector, alpha=self.config.alpha
            )
        elif feature is Feature.LATENT_HEAT:
            classifier = LatentHeatClassifier(
                detector, alpha=self.config.alpha, window=self.config.window
            )
        else:
            raise ClassificationError(f"unknown feature {feature!r}")
        return classifier.classify(self.matrix)

    def run_all(
        self, features: tuple[Feature, ...] = (Feature.LATENT_HEAT,)
    ) -> dict[str, ClassificationResult]:
        """Run both schemes for the requested features, keyed by label."""
        results: dict[str, ClassificationResult] = {}
        for scheme in Scheme:
            for feature in features:
                result = self.run(scheme, feature)
                results[result.label] = result
        return results

    def run_streaming(
        self,
        scheme: Scheme,
        feature: Feature,
        backend=None,
        workers: int = 1,
        spec=None,
    ) -> ClassificationResult:
        """Classify through the streaming pipeline instead of in batch.

        The matrix replays column by column through the online
        classifier; the reassembled result is identical to :meth:`run`
        (asserted in the test suite). This is the batch-as-a-wrapper
        entry point — useful when validating streaming deployments
        against recorded matrices.

        ``backend`` (an
        :class:`~repro.pipeline.backends.AggregationBackend`) replays
        the matrix under that backend's memory bound instead: the
        result covers the tracked population plus a residual row, so it
        approximates :meth:`run` with O(capacity) flow state.

        ``workers > 1`` replays the matrix through *true multi-process
        ingestion*: every active cell becomes a synthetic packet, the
        reader deals rows to ``workers`` shard processes, and the
        merged summaries classify at the collector. The result covers
        the merged population (active flows, first-appearance order,
        plus residual row 0) rather than the matrix's row order — same
        elephants, different shape — so it validates the distributed
        deployment, not byte-identity.

        ``spec`` (a :class:`~repro.pipeline.spec.PipelineSpec`) is the
        consolidated form of the same knobs: its backend and workers
        settings replace the two kwargs, which stay as thin shims.
        """
        # Imported here: repro.pipeline sits above the core layer.
        from repro.pipeline.engine import classify_matrix_streaming

        if spec is not None:
            if backend is not None or workers != 1:
                raise ClassificationError(
                    "give run_streaming a spec or the legacy "
                    "backend/workers kwargs, not both"
                )
            if spec.source is not None:
                raise ClassificationError(
                    "run_streaming replays this engine's matrix; a "
                    "spec with source= belongs to the packet entry "
                    "points (spec.open_source, parallel_ingest)"
                )
            workers = spec.workers
            if workers == 1:
                backend = spec.build_backend()
        if workers < 1:
            raise ClassificationError("workers must be >= 1")
        if workers > 1:
            if backend is not None:
                raise ClassificationError(
                    "workers mode builds its own per-worker backends; "
                    "pass backend=None"
                )
            return self._run_parallel(scheme, feature, workers, spec=spec)
        return classify_matrix_streaming(
            self.matrix,
            scheme=scheme,
            feature=feature,
            config=self.config,
            backend=backend,
        )

    def _run_parallel(
        self, scheme: Scheme, feature: Feature, workers: int, spec=None
    ) -> ClassificationResult:
        """Replay the matrix as packets through the worker fleet."""
        import math

        import numpy as np

        from repro.distributed.runner import RowResolver, parallel_ingest
        from repro.distributed.summary import SlotSummary
        from repro.pipeline.sources import ArrayPacketSource

        axis = self.matrix.axis
        seconds = axis.slot_seconds
        # The summary merge bins slots by absolute grid cell, so the
        # fleet's grid must anchor at a multiple of slot_seconds. An
        # axis that starts off-grid is snapped down to the grid and
        # packets are stamped at their slot's *start* (axis.start +
        # slot * seconds), which lands in grid cell `anchor_cell +
        # slot` for any in-slot offset — the verdicts are unaffected,
        # only the replayed clock shifts by under one slot.
        anchor = math.floor(axis.start / seconds) * seconds
        # Column-major nonzero walk: one packet per active cell.
        slots, rows = np.nonzero(self.matrix.rates.T)
        timestamps = axis.start + slots * seconds
        volumes = self.matrix.rates[rows, slots] * seconds / 8.0
        ingest = parallel_ingest(
            ArrayPacketSource(timestamps, rows, volumes),
            RowResolver(self.matrix.prefixes),
            workers=None if spec is not None else workers,
            slot_seconds=seconds,
            start=float(anchor),
            spec=spec,
        )
        # Workers only summarize slots that carried packets, but the
        # axis is authoritative here: idle leading/trailing slots (and
        # a fully idle matrix) must still classify, exactly as they do
        # in batch and workers=1 replays. One synthetic monitor run
        # covering the axis endpoints pins the merged span; fill_gaps
        # interpolates everything between.
        span = [
            SlotSummary(
                slot=slot,
                start=anchor + slot * seconds,
                slot_seconds=seconds,
                prefixes=(),
                volumes=np.zeros(0),
                monitor="axis",
            )
            for slot in sorted({0, axis.num_slots - 1})
        ]
        ingest.runs.append(span)
        result, _ = ingest.collector(
            scheme=scheme, feature=feature, config=self.config
        ).classify()
        return result

    def run_paper_grid(self) -> dict[str, ClassificationResult]:
        """The full 2×2 grid the paper's evaluation uses."""
        return self.run_all(features=(Feature.SINGLE, Feature.LATENT_HEAT))
