"""The per-prefix flow rate process.

Each prefix-flow's bandwidth series is the product of five components,
chosen so that the synthetic link reproduces the statistical facts the
paper's results rest on:

``x_i(t) = base_i · diurnal(t)^w_i · session_i(t) · noise_i(t) · burst_i(t)``

- ``base_i`` — heavy-tailed (bounded Pareto) base rate: the elephants
  and mice skew. A small tail index (≈1.1) puts ~80 % of the bytes in
  the top few percent of flows.
- ``diurnal(t)^w_i`` — the link's time-of-day profile, with a per-flow
  sensitivity exponent ``w_i`` (some customers are strongly diurnal,
  others flat).
- ``session_i(t)`` — an on/off process with heavy-tailed mean session
  lengths and diurnal-modulated re-activation, so the active flow count
  swells during working hours.
- ``noise_i(t)`` — mean-one lognormal multiplicative volatility with
  AR(1) temporal correlation: flows near any threshold wander across it
  on the 5-minute timescale, which is precisely what makes the
  single-feature classifier volatile.
- ``burst_i(t)`` — rare short burst episodes (1–3 slots) with
  heavy-tailed magnitude: the low-volume flows "bursting beyond the
  threshold for small periods of time" that the latent-heat feature is
  designed to filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.traffic.distributions import BoundedPareto, Pareto
from repro.traffic.diurnal import DiurnalProfile, FLAT_PROFILE


@dataclass(frozen=True)
class FlowModelConfig:
    """Parameters of the flow-population rate process."""

    num_flows: int = 8000
    #: Base-rate distribution (bits/second).
    rate_alpha: float = 1.12
    rate_min_bps: float = 1.0e3
    rate_max_bps: float = 1.0e7
    #: Lognormal volatility: per-flow sigma drawn uniformly in this range.
    noise_sigma_range: tuple[float, float] = (0.35, 0.70)
    #: AR(1) correlation of the log-noise across consecutive slots.
    noise_rho: float = 0.85
    #: Per-flow diurnal sensitivity exponent range.
    diurnal_exponent_range: tuple[float, float] = (0.4, 1.6)
    #: Session process: mean on-duration distribution (slots) and the
    #: occupancy range (fraction of time active, small → large flows).
    session_mean_slots_alpha: float = 1.4
    session_mean_slots_min: float = 3.0
    session_mean_slots_cap: float = 400.0
    #: Multiplier on mean session length for the largest flows
    #: (quadratic in rank): big aggregates stay up for hours.
    session_rank_boost: float = 9.0
    occupancy_range: tuple[float, float] = (0.30, 0.97)
    #: Per-flow sensitivity of session arrivals/departures to the
    #: diurnal profile: activation speeds up and deactivation slows
    #: down during the busy hours, so the *active population* swells
    #: through the working day as it does on real links.
    session_diurnal_exponent_range: tuple[float, float] = (0.5, 1.5)
    #: Burst episodes: per-slot start probability, magnitude, duration.
    #: The magnitude cap keeps a bursting mouse within the realm of a
    #: big flow rather than letting it swallow the link.
    burst_start_probability: float = 0.004
    burst_magnitude_alpha: float = 1.1
    burst_magnitude_min: float = 5.0
    burst_magnitude_cap: float = 120.0
    burst_max_slots: int = 3

    def validate(self) -> None:
        if self.num_flows <= 0:
            raise WorkloadError("num_flows must be positive")
        if not 0 < self.rate_min_bps < self.rate_max_bps:
            raise WorkloadError("need 0 < rate_min_bps < rate_max_bps")
        low, high = self.noise_sigma_range
        if not 0 <= low <= high:
            raise WorkloadError("bad noise_sigma_range")
        if not 0 <= self.noise_rho < 1:
            raise WorkloadError("noise_rho must be in [0, 1)")
        low, high = self.occupancy_range
        if not 0 < low <= high <= 1:
            raise WorkloadError("occupancy_range must lie in (0, 1]")
        if self.session_rank_boost < 0:
            raise WorkloadError("session_rank_boost must be non-negative")
        sde_low, sde_high = self.session_diurnal_exponent_range
        if not 0 <= sde_low <= sde_high:
            raise WorkloadError("bad session_diurnal_exponent_range")
        if not 0 <= self.burst_start_probability < 0.5:
            raise WorkloadError("burst_start_probability out of range")
        if self.burst_max_slots < 1:
            raise WorkloadError("burst_max_slots must be >= 1")


@dataclass
class FlowPopulation:
    """Sampled static attributes of every flow in the population."""

    base_rates: np.ndarray
    noise_sigmas: np.ndarray
    diurnal_exponents: np.ndarray
    occupancies: np.ndarray
    mean_on_slots: np.ndarray
    session_diurnal_exponents: np.ndarray
    config: FlowModelConfig = field(repr=False)

    @classmethod
    def sample(cls, config: FlowModelConfig,
               rng: np.random.Generator) -> "FlowPopulation":
        """Draw the static per-flow attributes."""
        config.validate()
        n = config.num_flows
        base = BoundedPareto(
            config.rate_alpha, config.rate_min_bps, config.rate_max_bps
        ).sample(rng, n)
        sigma_low, sigma_high = config.noise_sigma_range
        sigmas = rng.uniform(sigma_low, sigma_high, n)
        exp_low, exp_high = config.diurnal_exponent_range
        exponents = rng.uniform(exp_low, exp_high, n)
        # Larger flows are disproportionately long-lived: occupancy and
        # mean session length both grow with the flow's rank in the
        # base-rate order (an aggregate of many users behind a big
        # prefix rarely goes fully silent, and stays up for hours).
        rank_fraction = np.argsort(np.argsort(base)) / max(1, n - 1)
        occ_low, occ_high = config.occupancy_range
        occupancies = occ_low + (occ_high - occ_low) * rank_fraction
        mean_on = Pareto(
            config.session_mean_slots_alpha, config.session_mean_slots_min
        ).sample(rng, n)
        mean_on *= 1.0 + config.session_rank_boost * rank_fraction ** 2
        mean_on = np.minimum(mean_on, config.session_mean_slots_cap)
        sde_low, sde_high = config.session_diurnal_exponent_range
        session_exponents = rng.uniform(sde_low, sde_high, n)
        return cls(base, sigmas, exponents, occupancies, mean_on,
                   session_exponents, config)

    @property
    def num_flows(self) -> int:
        return self.base_rates.size


def generate_rate_matrix_values(population: FlowPopulation,
                                diurnal: DiurnalProfile,
                                seconds_of_day: np.ndarray,
                                rng: np.random.Generator) -> np.ndarray:
    """Simulate the rate process; returns ``(num_flows, num_slots)`` bps.

    ``seconds_of_day`` holds each slot's start offset within the day
    (values may exceed 86400 for multi-day runs; the profile wraps).
    """
    config = population.config
    n = population.num_flows
    num_slots = seconds_of_day.size
    if num_slots == 0:
        raise WorkloadError("need at least one slot")

    profile_values = diurnal.at(seconds_of_day)  # (num_slots,)
    diurnal_factor = profile_values[None, :] ** population.diurnal_exponents[:, None]

    noise = _ar1_lognormal_noise(population.noise_sigmas, config.noise_rho,
                                 num_slots, rng)
    sessions = _session_states(population, profile_values, rng)
    bursts = _burst_factors(config, n, num_slots, rng)

    rates = (population.base_rates[:, None]
             * diurnal_factor * sessions * noise * bursts)
    return rates


def _ar1_lognormal_noise(sigmas: np.ndarray, rho: float, num_slots: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Mean-one lognormal noise with AR(1) log-domain correlation.

    The stationary log-variance is ``sigma**2`` per flow; the mean
    correction ``exp(-sigma**2 / 2)`` keeps E[noise] = 1 so volatility
    does not inflate the link load.
    """
    n = sigmas.size
    log_noise = np.empty((n, num_slots))
    log_noise[:, 0] = rng.normal(0.0, 1.0, n) * sigmas
    innovation_scale = sigmas * np.sqrt(1.0 - rho ** 2)
    for t in range(1, num_slots):
        log_noise[:, t] = (rho * log_noise[:, t - 1]
                           + rng.normal(0.0, 1.0, n) * innovation_scale)
    return np.exp(log_noise - sigmas[:, None] ** 2 / 2.0)


def _session_states(population: FlowPopulation, profile_values: np.ndarray,
                    rng: np.random.Generator) -> np.ndarray:
    """Simulate the on/off session process as 0/1 states per slot.

    Off→on hazard is scaled by the diurnal profile, so the *number* of
    active flows swells during the busy hours — the effect behind the
    west-coast link's daytime elephant burst in Fig. 1(a).
    """
    n = population.num_flows
    num_slots = profile_values.size
    occupancy = population.occupancies
    off_hazard = 1.0 / np.maximum(population.mean_on_slots, 1.0)
    # Choose the on-hazard so stationary occupancy matches the target:
    # occupancy = on_hazard / (on_hazard + off_hazard).
    on_hazard = off_hazard * occupancy / np.maximum(1e-9, 1.0 - occupancy)
    on_hazard = np.minimum(on_hazard, 1.0)

    exponent = population.session_diurnal_exponents
    states = np.empty((n, num_slots))
    initial_swing = profile_values[0] ** exponent
    initial_occupancy = np.clip(occupancy * initial_swing, 0.02, 1.0)
    states[:, 0] = (rng.random(n) < initial_occupancy).astype(float)
    for t in range(1, num_slots):
        previous = states[:, t - 1] > 0
        swing = profile_values[t] ** exponent
        # Sessions arrive faster and die slower during the busy hours,
        # so stationary occupancy rises roughly with swing squared.
        departure = np.clip(off_hazard / np.maximum(swing, 1e-6), 0.0, 1.0)
        activation = np.minimum(on_hazard * swing, 1.0)
        stay_on = rng.random(n) >= departure
        turn_on = rng.random(n) < activation
        states[:, t] = np.where(previous, stay_on, turn_on).astype(float)
    return states


def _burst_factors(config: FlowModelConfig, n: int, num_slots: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Multiplicative burst factors (1.0 outside burst episodes)."""
    factors = np.ones((n, num_slots))
    if config.burst_start_probability == 0:
        return factors
    magnitude_dist = Pareto(config.burst_magnitude_alpha,
                            config.burst_magnitude_min)
    remaining = np.zeros(n, dtype=int)
    magnitude = np.ones(n)
    for t in range(num_slots):
        idle = remaining == 0
        starts = idle & (rng.random(n) < config.burst_start_probability)
        count = int(starts.sum())
        if count:
            drawn = magnitude_dist.sample(rng, count)
            magnitude[starts] = np.minimum(drawn, config.burst_magnitude_cap)
            remaining[starts] = rng.integers(1, config.burst_max_slots + 1,
                                             count)
        active = remaining > 0
        factors[active, t] = magnitude[active]
        remaining[active] -= 1
    return factors


def simulate_flat_population(num_flows: int, num_slots: int,
                             seed: int = 0,
                             config: FlowModelConfig | None = None) -> np.ndarray:
    """Convenience: rate values under a flat diurnal profile.

    Useful for unit tests and controlled ablations where time-of-day
    effects would be a confound.
    """
    if config is None:
        config = FlowModelConfig(num_flows=num_flows)
    elif config.num_flows != num_flows:
        raise WorkloadError("config.num_flows disagrees with num_flows")
    rng = np.random.default_rng(seed)
    population = FlowPopulation.sample(config, rng)
    seconds = np.arange(num_slots) * 300.0
    return generate_rate_matrix_values(population, FLAT_PROFILE, seconds, rng)
