"""Render fluid rates into packet streams (and pcap files).

The paper's pipeline starts from packets; ours usually starts from the
fluid rate matrix because a 28-hour OC-12 trace is ~10^10 packets. For
laptop-scale scenarios this module closes the loop: it converts a rate
matrix into a packet stream whose per-slot per-prefix byte counts match
the fluid rates, writes it through the pcap layer, and the aggregation
layer recovers the original matrix (tested end-to-end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.flows.matrix import RateMatrix
from repro.net import ipv4
from repro.pcap.packet import build_frame, build_udp_packet
from repro.pcap.pcapfile import CaptureRecord, PcapWriter
from repro.traffic.distributions import PacketSizeMix

#: Bytes of overhead per packet outside the IP datagram (Ethernet II).
ETHERNET_OVERHEAD = 14
#: IP + UDP header bytes preceding the payload in synthesised packets.
IP_UDP_HEADERS = 20 + 8
#: Smallest realisable frame: headers with an empty payload. Drawn
#: packet sizes are floored here so the byte budget matches what is
#: actually emitted.
MIN_FRAME_BYTES = ETHERNET_OVERHEAD + IP_UDP_HEADERS


@dataclass(frozen=True)
class PacketizerConfig:
    """Controls for the rate-to-packet conversion."""

    size_mix: PacketSizeMix = PacketSizeMix()
    source_address: int = 0x0A000001  # 10.0.0.1, the "rest of the world"
    source_port: int = 4000
    destination_port: int = 80
    seed: int = 1234


def packetize_matrix(matrix: RateMatrix,
                     config: PacketizerConfig | None = None
                     ) -> Iterator[CaptureRecord]:
    """Yield timestamp-ordered capture records realising ``matrix``.

    For each flow-slot cell, the cell's byte budget is spent on packets
    drawn from the size mix; packet timestamps are spread uniformly at
    random inside the slot, then all packets in a slot are emitted in
    timestamp order (pcap files must be chronological). The residual
    byte budget smaller than the smallest packet is dropped, so the
    recovered rate is a lower bound within one packet per flow-slot.
    """
    if config is None:
        config = PacketizerConfig()
    rng = np.random.default_rng(config.seed)
    axis = matrix.axis
    min_size = max(int(config.size_mix.sizes.min()), MIN_FRAME_BYTES)

    for slot in range(axis.num_slots):
        slot_start = axis.slot_start(slot)
        pending: list[tuple[float, int, int]] = []  # (ts, dest, wire_bytes)
        for row in range(matrix.num_flows):
            rate = matrix.rates[row, slot]
            if rate <= 0:
                continue
            budget = int(rate * axis.slot_seconds / 8.0)
            if budget < min_size:
                continue
            prefix = matrix.prefixes[row]
            sizes = _draw_sizes(budget, config.size_mix, rng)
            timestamps = slot_start + rng.random(sizes.size) * axis.slot_seconds
            destinations = [
                ipv4.random_host_in(prefix.network, prefix.length, rng)
                for _ in range(sizes.size)
            ]
            pending.extend(zip(timestamps.tolist(), destinations,
                               sizes.tolist()))
        pending.sort(key=lambda item: item[0])
        for timestamp, destination, wire_bytes in pending:
            yield _make_record(timestamp, destination, wire_bytes, config)


def _draw_sizes(budget: int, mix: PacketSizeMix,
                rng: np.random.Generator) -> np.ndarray:
    """Spend ``budget`` bytes on packets from the size mix.

    Over-draws in bulk (budget / mean size, padded), then trims to the
    largest prefix of draws fitting the budget — O(packets) with no
    Python-level loop per packet.
    """
    mean = mix.mean_bytes()
    estimated = max(4, int(budget / mean * 1.5) + 4)
    sizes = np.maximum(mix.sample(rng, estimated), MIN_FRAME_BYTES)
    cumulative = np.cumsum(sizes)
    count = int(np.searchsorted(cumulative, budget, side="right"))
    if count == 0:
        smallest = max(int(mix.sizes.min()), MIN_FRAME_BYTES)
        if budget >= smallest:
            return np.array([smallest])
        return np.empty(0, dtype=int)
    return sizes[:count]


def _make_record(timestamp: float, destination: int, wire_bytes: int,
                 config: PacketizerConfig) -> CaptureRecord:
    """Build one Ethernet/IPv4/UDP packet of ``wire_bytes`` total size."""
    payload_len = max(0, wire_bytes - ETHERNET_OVERHEAD - IP_UDP_HEADERS)
    packet = build_udp_packet(
        source_ip=config.source_address,
        destination_ip=destination,
        source_port=config.source_port,
        destination_port=config.destination_port,
        payload=b"\x00" * payload_len,
    )
    return CaptureRecord(timestamp=timestamp, data=build_frame(packet))


def write_pcap(matrix: RateMatrix, path: str,
               config: PacketizerConfig | None = None) -> int:
    """Packetize ``matrix`` into a pcap file; returns the packet count.

    Refuses matrices whose realisation would exceed ~20 M packets:
    that is a sign the caller meant to use the fluid path.
    """
    total_bytes = matrix.rates.sum() * matrix.axis.slot_seconds / 8.0
    mix = (config or PacketizerConfig()).size_mix
    estimated_packets = total_bytes / mix.mean_bytes()
    if estimated_packets > 20e6:
        raise WorkloadError(
            f"matrix would realise ~{estimated_packets / 1e6:.0f}M packets; "
            "packetisation is meant for laptop-scale scenarios"
        )
    with PcapWriter.open(path) as writer:
        return writer.write_all(packetize_matrix(matrix, config))
