"""Canonical scenarios mirroring the paper's measurement setup.

Two OC-12 links observed from 09:00 on 2001-07-24 to 13:00 on
2001-07-25 — 28 hours, i.e. 336 slots of 5 minutes. The west-coast link
is bursty during working hours; the east-coast link is smooth. Scales
below 1.0 shrink the population and horizon proportionally for fast
tests and CI runs.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.traffic.diurnal import EAST_COAST_PROFILE, WEST_COAST_PROFILE
from repro.traffic.flowmodel import FlowModelConfig
from repro.traffic.linksim import LinkConfig, LinkWorkload, simulate_link

#: The paper's observation window: 28 hours of 5-minute slots.
PAPER_NUM_SLOTS = 336
#: Default flow population size for full-scale runs.
PAPER_NUM_FLOWS = 8000
#: Slot floor for scaled-down runs: 12 hours, so that even tiny runs
#: retain a working-hours / off-hours contrast for the Fig 1(a) shape.
MIN_NUM_SLOTS = 144


def _scaled(value: int, scale: float, minimum: int) -> int:
    if scale <= 0 or scale > 1:
        raise WorkloadError(f"scale {scale} must be in (0, 1]")
    return max(minimum, int(round(value * scale)))


def west_coast_config(scale: float = 1.0, seed: int = 2401) -> LinkConfig:
    """The bursty west-coast OC-12 link."""
    return LinkConfig(
        name="west-coast",
        profile=WEST_COAST_PROFILE,
        flow_model=FlowModelConfig(
            num_flows=_scaled(PAPER_NUM_FLOWS, scale, 400),
        ),
        target_mean_utilization=0.38,
        num_slots=_scaled(PAPER_NUM_SLOTS, scale, MIN_NUM_SLOTS),
        seed=seed,
    )


def east_coast_config(scale: float = 1.0, seed: int = 2402) -> LinkConfig:
    """The smoother east-coast OC-12 link."""
    return LinkConfig(
        name="east-coast",
        profile=EAST_COAST_PROFILE,
        flow_model=FlowModelConfig(
            num_flows=_scaled(PAPER_NUM_FLOWS, scale, 400),
        ),
        target_mean_utilization=0.32,
        num_slots=_scaled(PAPER_NUM_SLOTS, scale, MIN_NUM_SLOTS),
        seed=seed,
    )


def west_coast_link(scale: float = 1.0, seed: int = 2401) -> LinkWorkload:
    """Simulate the west-coast scenario."""
    return simulate_link(west_coast_config(scale, seed))


def east_coast_link(scale: float = 1.0, seed: int = 2402) -> LinkWorkload:
    """Simulate the east-coast scenario."""
    return simulate_link(east_coast_config(scale, seed))


def both_links(scale: float = 1.0) -> dict[str, LinkWorkload]:
    """Both paper links, keyed by name."""
    return {
        "west-coast": west_coast_link(scale),
        "east-coast": east_coast_link(scale),
    }
