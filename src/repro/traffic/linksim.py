"""Whole-link workload simulation: population + diurnal + RIB → RateMatrix.

A :class:`LinkWorkload` bundles everything the experiments need about a
monitored link: its rate matrix (the paper's ``x_i(t)``), the BGP table
that defines the flow keys, and the physical capacity for utilisation
reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.flows.matrix import RateMatrix
from repro.flows.records import TimeAxis
from repro.routing.rib import RoutingTable
from repro.routing.ribgen import RibGeneratorConfig, generate_rib
from repro.traffic.diurnal import DiurnalProfile
from repro.traffic.flowmodel import (
    FlowModelConfig,
    FlowPopulation,
    generate_rate_matrix_values,
)

#: OC-12 payload capacity, the paper's link speed (bits/second).
OC12_CAPACITY_BPS = 622_080_000.0


@dataclass(frozen=True)
class LinkConfig:
    """Configuration of one simulated backbone link."""

    name: str
    profile: DiurnalProfile
    flow_model: FlowModelConfig = field(default_factory=FlowModelConfig)
    capacity_bps: float = OC12_CAPACITY_BPS
    #: Mean utilisation the rate matrix is normalised to (fraction).
    target_mean_utilization: float = 0.35
    #: No single prefix-flow may exceed this fraction of link capacity:
    #: a destination network's traffic is bounded by its own access
    #: links, and an unbounded burst would otherwise let one flow carry
    #: most of a slot and whipsaw the constant-load threshold.
    max_flow_capacity_fraction: float = 0.20
    num_slots: int = 336
    slot_seconds: float = 300.0
    #: Time-of-day at slot 0, seconds after local midnight (09:00 here,
    #: matching the figure's clock).
    start_seconds_of_day: float = 9 * 3600.0
    #: Epoch timestamp of slot 0 (2001-07-24 09:00 by default; the value
    #: itself only matters for pcap timestamps and display).
    start_epoch: float = 995_990_400.0 + 9 * 3600.0
    seed: int = 42

    def validate(self) -> None:
        if self.capacity_bps <= 0:
            raise WorkloadError("capacity must be positive")
        if not 0 < self.target_mean_utilization < 1:
            raise WorkloadError("target_mean_utilization must be in (0, 1)")
        if not 0 < self.max_flow_capacity_fraction <= 1:
            raise WorkloadError(
                "max_flow_capacity_fraction must be in (0, 1]"
            )
        if self.num_slots <= 0 or self.slot_seconds <= 0:
            raise WorkloadError("num_slots and slot_seconds must be positive")
        self.flow_model.validate()


@dataclass
class LinkWorkload:
    """A fully simulated link: rates, routing table, and metadata."""

    config: LinkConfig
    matrix: RateMatrix
    table: RoutingTable
    population: FlowPopulation

    @property
    def name(self) -> str:
        return self.config.name

    def mean_utilization(self) -> float:
        """Achieved mean utilisation of the simulated link."""
        return self.matrix.mean_utilization(self.config.capacity_bps)


def simulate_link(config: LinkConfig,
                  table: RoutingTable | None = None) -> LinkWorkload:
    """Simulate one link's workload over its configured horizon.

    When ``table`` is omitted, a synthetic RIB with exactly one route per
    flow is generated (including the ~100 /8 population used by the
    prefix-characteristics analysis). Rates are assigned to prefixes in
    a shuffled order so prefix length carries no information about flow
    size — the null hypothesis behind the paper's T3 observation.
    """
    config.validate()
    rng = np.random.default_rng(config.seed)

    if table is None:
        table = generate_rib(RibGeneratorConfig(
            num_routes=config.flow_model.num_flows,
            seed=config.seed + 7,
        ))
    prefixes = table.prefixes()
    if len(prefixes) < config.flow_model.num_flows:
        raise WorkloadError(
            f"table has {len(prefixes)} routes but the flow model wants "
            f"{config.flow_model.num_flows}"
        )
    prefixes = prefixes[: config.flow_model.num_flows]

    population = FlowPopulation.sample(config.flow_model, rng)
    seconds_of_day = (config.start_seconds_of_day
                      + np.arange(config.num_slots) * config.slot_seconds)
    rates = generate_rate_matrix_values(population, config.profile,
                                        seconds_of_day, rng)

    # Decouple flow size from prefix identity: shuffle the row order.
    order = rng.permutation(len(prefixes))
    shuffled_prefixes = [prefixes[i] for i in order]

    # Normalise to the target mean utilisation, but never let the peak
    # slot exceed 90 % of capacity: a real OC-12 cannot carry more than
    # line rate, and the diurnal peak times noise can otherwise overshoot.
    per_slot_load = rates.sum(axis=0)
    mean_load = per_slot_load.mean()
    peak_load = per_slot_load.max()
    if mean_load <= 0:
        raise WorkloadError("simulated link produced zero load")
    scale = min(
        config.target_mean_utilization * config.capacity_bps / mean_load,
        0.90 * config.capacity_bps / peak_load,
    )
    rates *= scale
    population.base_rates *= scale
    # Physical access-capacity bound per prefix (see LinkConfig).
    np.minimum(
        rates,
        config.max_flow_capacity_fraction * config.capacity_bps,
        out=rates,
    )

    axis = TimeAxis(config.start_epoch, config.slot_seconds, config.num_slots)
    matrix = RateMatrix(shuffled_prefixes, axis, rates)
    return LinkWorkload(config, matrix, table, population)
