"""Diurnal (time-of-day) load profiles.

The paper's two links behave differently across the day: the west-coast
link "experiences a high burst in its utilization during the working
hours" while the east-coast link "exhibits smoother utilization levels".
A :class:`DiurnalProfile` captures that as a periodic multiplier built
from hourly control points with smooth (cosine) interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

SECONDS_PER_DAY = 86400.0
SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class DiurnalProfile:
    """A 24-hour periodic multiplier defined by hourly control points.

    ``hourly[h]`` is the multiplier at hour ``h`` o'clock; values between
    control points are cosine-interpolated for a smooth derivative. The
    multiplier is relative: 1.0 means the link's base level.
    """

    name: str
    hourly: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.hourly) != 24:
            raise WorkloadError(
                f"profile {self.name!r} needs 24 hourly points, "
                f"got {len(self.hourly)}"
            )
        if any(value <= 0 for value in self.hourly):
            raise WorkloadError("profile multipliers must be positive")

    def at(self, seconds_of_day: np.ndarray | float) -> np.ndarray:
        """Evaluate the profile at time-of-day offsets (seconds)."""
        seconds = np.asarray(seconds_of_day, dtype=float) % SECONDS_PER_DAY
        hours = seconds / SECONDS_PER_HOUR
        base = np.floor(hours).astype(int) % 24
        nxt = (base + 1) % 24
        fraction = hours - np.floor(hours)
        # Cosine easing between the two control points.
        blend = (1.0 - np.cos(np.pi * fraction)) / 2.0
        values = np.asarray(self.hourly)
        return values[base] * (1.0 - blend) + values[nxt] * blend

    def peak_to_trough(self) -> float:
        """Ratio between the busiest and quietest control points."""
        return max(self.hourly) / min(self.hourly)

    def scaled(self, factor: float) -> "DiurnalProfile":
        """A uniformly scaled copy (same shape, different level)."""
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        return DiurnalProfile(
            f"{self.name}*{factor:g}",
            tuple(value * factor for value in self.hourly),
        )


def _working_hours_profile(night: float, morning_ramp: float, peak: float,
                           evening: float, name: str) -> DiurnalProfile:
    """Build a profile shaped like business traffic on a backbone link."""
    hourly = [night] * 24
    for hour in range(6, 9):
        hourly[hour] = night + (morning_ramp - night) * (hour - 5) / 3.0
    for hour in range(9, 18):
        hourly[hour] = peak
    for hour in range(18, 23):
        hourly[hour] = evening
    hourly[23] = night
    return DiurnalProfile(name, tuple(hourly))


#: Bursty profile: strong working-hours hump over a quiet night — the
#: paper's west-coast link.
WEST_COAST_PROFILE = _working_hours_profile(
    night=0.45, morning_ramp=0.9, peak=1.75, evening=0.95,
    name="west-coast-bursty",
)

#: Smooth profile: mild day/night swing — the paper's east-coast link.
EAST_COAST_PROFILE = _working_hours_profile(
    night=0.75, morning_ramp=0.95, peak=1.25, evening=1.0,
    name="east-coast-smooth",
)

#: A completely flat profile, useful for controlled experiments.
FLAT_PROFILE = DiurnalProfile("flat", tuple([1.0] * 24))
