"""Synthetic backbone workloads: distributions, diurnal profiles,
flow-rate processes, link simulation and packetisation."""

from repro.traffic.distributions import (
    BoundedPareto,
    Lognormal,
    PacketSizeMix,
    Pareto,
)
from repro.traffic.diurnal import (
    EAST_COAST_PROFILE,
    FLAT_PROFILE,
    WEST_COAST_PROFILE,
    DiurnalProfile,
)
from repro.traffic.flowmodel import (
    FlowModelConfig,
    FlowPopulation,
    generate_rate_matrix_values,
    simulate_flat_population,
)
from repro.traffic.linksim import (
    OC12_CAPACITY_BPS,
    LinkConfig,
    LinkWorkload,
    simulate_link,
)
from repro.traffic.packetize import (
    PacketizerConfig,
    packetize_matrix,
    write_pcap,
)
from repro.traffic.scenarios import (
    PAPER_NUM_FLOWS,
    PAPER_NUM_SLOTS,
    both_links,
    east_coast_config,
    east_coast_link,
    west_coast_config,
    west_coast_link,
)

__all__ = [
    "BoundedPareto",
    "DiurnalProfile",
    "EAST_COAST_PROFILE",
    "FLAT_PROFILE",
    "FlowModelConfig",
    "FlowPopulation",
    "LinkConfig",
    "LinkWorkload",
    "Lognormal",
    "OC12_CAPACITY_BPS",
    "PAPER_NUM_FLOWS",
    "PAPER_NUM_SLOTS",
    "PacketSizeMix",
    "PacketizerConfig",
    "Pareto",
    "WEST_COAST_PROFILE",
    "both_links",
    "east_coast_config",
    "east_coast_link",
    "generate_rate_matrix_values",
    "packetize_matrix",
    "simulate_flat_population",
    "simulate_link",
    "west_coast_config",
    "west_coast_link",
    "write_pcap",
]
