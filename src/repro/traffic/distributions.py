"""Random-variate building blocks for the synthetic workload.

Backbone traffic modelling needs three staples: Pareto (heavy-tailed
flow sizes and rates), lognormal (multiplicative volatility), and an
empirical packet-size mix. Each distribution validates its parameters
at construction so misconfiguration fails loudly at setup time, not in
the middle of a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Pareto:
    """Pareto distribution with tail index ``alpha`` and scale ``x_min``.

    ``P(X > x) = (x_min / x) ** alpha`` for ``x >= x_min``. ``alpha <= 1``
    has infinite mean — exactly the regime elephant populations live in,
    so :meth:`mean` guards against it.
    """

    alpha: float
    x_min: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise WorkloadError(f"Pareto alpha {self.alpha} must be positive")
        if self.x_min <= 0:
            raise WorkloadError(f"Pareto x_min {self.x_min} must be positive")

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...] = 1) -> np.ndarray:
        """Draw samples via inverse-CDF on uniform variates."""
        uniforms = rng.random(size)
        return self.x_min * (1.0 - uniforms) ** (-1.0 / self.alpha)

    def ccdf(self, x: np.ndarray) -> np.ndarray:
        """Exact ``P(X > x)``."""
        x = np.asarray(x, dtype=float)
        out = np.ones_like(x)
        above = x >= self.x_min
        out[above] = (self.x_min / x[above]) ** self.alpha
        return out

    def mean(self) -> float:
        """Finite mean (requires ``alpha > 1``)."""
        if self.alpha <= 1.0:
            raise WorkloadError(
                f"Pareto with alpha={self.alpha} has infinite mean"
            )
        return self.alpha * self.x_min / (self.alpha - 1.0)


@dataclass(frozen=True)
class BoundedPareto:
    """Pareto truncated to ``[x_min, x_max]`` by inverse-CDF sampling.

    Flow *rates* cannot exceed link capacity, so the unbounded tail must
    be clipped somewhere physical; truncation (rather than rejection)
    keeps sampling O(1) and the spectral shape intact below the bound.
    """

    alpha: float
    x_min: float
    x_max: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise WorkloadError(f"alpha {self.alpha} must be positive")
        if not 0 < self.x_min < self.x_max:
            raise WorkloadError(
                f"need 0 < x_min < x_max, got [{self.x_min}, {self.x_max}]"
            )

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...] = 1) -> np.ndarray:
        """Inverse-CDF sampling of the truncated distribution."""
        uniforms = rng.random(size)
        ratio = (self.x_min / self.x_max) ** self.alpha
        return self.x_min * (1.0 - uniforms * (1.0 - ratio)) ** (-1.0 / self.alpha)


@dataclass(frozen=True)
class Lognormal:
    """Lognormal with log-mean ``mu`` and log-std ``sigma``."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise WorkloadError(f"sigma {self.sigma} must be non-negative")

    def sample(self, rng: np.random.Generator,
               size: int | tuple[int, ...] = 1) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size)

    def mean(self) -> float:
        """Analytical mean ``exp(mu + sigma^2 / 2)``."""
        return float(np.exp(self.mu + self.sigma ** 2 / 2.0))


#: Classic backbone packet-size mix: ~40-byte control/ACK packets,
#: ~576-byte legacy-MTU packets, ~1500-byte full-MTU packets.
DEFAULT_PACKET_SIZES = np.array([40, 576, 1500])
DEFAULT_PACKET_SIZE_WEIGHTS = np.array([0.5, 0.2, 0.3])


@dataclass(frozen=True)
class PacketSizeMix:
    """Discrete packet-size distribution (bytes)."""

    sizes: np.ndarray = None  # type: ignore[assignment]
    weights: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        sizes = (DEFAULT_PACKET_SIZES if self.sizes is None
                 else np.asarray(self.sizes, dtype=int))
        weights = (DEFAULT_PACKET_SIZE_WEIGHTS if self.weights is None
                   else np.asarray(self.weights, dtype=float))
        if sizes.size != weights.size or sizes.size == 0:
            raise WorkloadError("sizes and weights must align and be non-empty")
        if np.any(sizes <= 0):
            raise WorkloadError("packet sizes must be positive")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise WorkloadError("weights must be non-negative, sum positive")
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "weights", weights / weights.sum())

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw packet sizes in bytes."""
        return rng.choice(self.sizes, size=size, p=self.weights)

    def mean_bytes(self) -> float:
        """Expected packet size."""
        return float((self.sizes * self.weights).sum())
