"""A BGP routing information base (RIB) keyed by destination prefix.

The RIB is the structure the paper takes as given: its flow granularity
is "the BGP destination network prefix", i.e. a RIB entry. Our RIB wraps
the radix trie with route metadata (AS path, origin tier) and provides
the packet-to-flow mapping used by the aggregation layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import RoutingError
from repro.net.prefix import Prefix
from repro.routing.aspath import AsPath, AsTier, AutonomousSystem
from repro.routing.radix import RadixTree


@dataclass(frozen=True)
class Route:
    """One RIB entry: a destination prefix and its BGP attributes."""

    prefix: Prefix
    as_path: AsPath
    origin_as: AutonomousSystem

    def __post_init__(self) -> None:
        if self.as_path.origin != self.origin_as.number:
            raise RoutingError(
                f"AS path origin {self.as_path.origin} disagrees with "
                f"origin AS {self.origin_as.number}"
            )

    @property
    def prefix_length(self) -> int:
        """Length of the destination prefix in bits."""
        return self.prefix.length

    @property
    def origin_tier(self) -> AsTier:
        """Tier of the originating AS."""
        return self.origin_as.tier


class RoutingTable:
    """A longest-prefix-match BGP RIB.

    Routes are inserted once; re-announcing a prefix replaces the old
    route. ``resolve`` maps a destination address to the Route whose
    prefix is the longest match — the paper's flow-aggregation key.
    """

    def __init__(self, routes: Iterable[Route] = ()) -> None:
        self._tree: RadixTree[Route] = RadixTree()
        self._generation = 0
        for route in routes:
            self.add(route)

    def __len__(self) -> int:
        return len(self._tree)

    def __iter__(self) -> Iterator[Route]:
        for _, route in self._tree:
            yield route

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._tree

    @property
    def generation(self) -> int:
        """Mutation counter: bumps on every add/withdraw.

        Lets snapshot consumers (the compiled LPM cache) detect *any*
        churn, including same-size replace-one-route updates that a
        ``len()`` comparison would miss.
        """
        return self._generation

    def add(self, route: Route) -> None:
        """Insert (or replace) the route for ``route.prefix``."""
        self._tree.insert(route.prefix, route)
        self._generation += 1

    def withdraw(self, prefix: Prefix) -> Route:
        """Remove the route for ``prefix``; raises if absent."""
        route = self._tree.delete(prefix)
        self._generation += 1
        return route

    def route_for(self, prefix: Prefix) -> Optional[Route]:
        """Exact-match route lookup."""
        return self._tree.get(prefix)

    def resolve(self, address: int) -> Optional[Route]:
        """Longest-prefix match of ``address`` to a route."""
        match = self._tree.lookup(address)
        return None if match is None else match[1]

    def resolve_prefix(self, address: int) -> Optional[Prefix]:
        """Longest-prefix match returning only the flow key."""
        return self._tree.lookup_prefix(address)

    def prefixes(self) -> list[Prefix]:
        """All announced prefixes in deterministic order."""
        return self._tree.prefixes()

    def prefix_length_histogram(self) -> dict[int, int]:
        """Count of routes per prefix length (used by the T3 analysis)."""
        histogram: dict[int, int] = {}
        for route in self:
            length = route.prefix_length
            histogram[length] = histogram.get(length, 0) + 1
        return histogram

    def routes_by_tier(self) -> dict[AsTier, list[Route]]:
        """Group routes by the tier of their origin AS."""
        groups: dict[AsTier, list[Route]] = {tier: [] for tier in AsTier}
        for route in self:
            groups[route.origin_tier].append(route)
        return groups
