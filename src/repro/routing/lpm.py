"""Array-compiled longest-prefix match for the vectorized hot path.

The radix trie (:mod:`repro.routing.radix`) resolves one address per
call, which is the right shape for control-plane lookups but not for
ingesting millions of packets. Because announced prefixes form a laminar
family (any two prefixes either nest or are disjoint), longest-prefix
match over the whole table flattens into a sorted list of disjoint
address segments, each owned by the deepest covering prefix. Resolving a
*batch* of addresses is then one ``np.searchsorted`` over the segment
bounds — O(log n) per address with no Python-level work per packet.

:class:`CompiledLpm` is an immutable snapshot: routes added to the table
after compilation are not seen. The aggregation layer recompiles when it
detects a table-size change; callers holding a long-lived compiled
matcher across RIB churn should recompile explicitly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import RoutingError
from repro.net.prefix import Prefix
from repro.routing.rib import RoutingTable

#: Row value meaning "no covering prefix" in lookup results.
NO_ROUTE = -1


class CompiledLpm:
    """Longest-prefix match compiled to sorted segment arrays.

    ``prefixes`` fixes the row numbering: ``lookup(addresses)`` returns,
    for every address, the index into ``prefixes`` of its longest match
    (or :data:`NO_ROUTE`). Rows are in lexicographic prefix order, the
    same order :meth:`RoutingTable.prefixes` yields, so results align
    with matrices built over ``table.prefixes()``.
    """

    def __init__(self, prefixes: Sequence[Prefix]) -> None:
        if len(set(prefixes)) != len(prefixes):
            raise RoutingError("duplicate prefixes in LPM table")
        self.prefixes: list[Prefix] = sorted(prefixes)
        bounds, owners = self._flatten(self.prefixes)
        self._bounds = bounds
        self._owners = owners

    @classmethod
    def from_table(cls, table: RoutingTable) -> "CompiledLpm":
        """Compile the current snapshot of a routing table."""
        return cls(table.prefixes())

    def __len__(self) -> int:
        return len(self.prefixes)

    @staticmethod
    def _flatten(prefixes: list[Prefix]) -> tuple[np.ndarray, np.ndarray]:
        """Sweep the laminar prefix family into disjoint owned segments.

        Prefixes sorted by (network, length) visit every parent before
        its children; a stack of open intervals tracks the current
        deepest cover. Bounds use int64 because the final segment end is
        2**32, one past the largest address.
        """
        bounds: list[int] = [0]
        owners: list[int] = [NO_ROUTE]
        stack: list[tuple[int, int]] = []  # (end, owner row)

        def emit(position: int, owner: int) -> None:
            if bounds[-1] == position:
                owners[-1] = owner
            elif owners[-1] != owner:
                bounds.append(position)
                owners.append(owner)

        for row, prefix in enumerate(prefixes):
            start = prefix.network
            end = prefix.broadcast + 1
            while stack and stack[-1][0] <= start:
                closed_end, _ = stack.pop()
                emit(closed_end, stack[-1][1] if stack else NO_ROUTE)
            emit(start, row)
            stack.append((end, row))
        while stack:
            closed_end, _ = stack.pop()
            emit(closed_end, stack[-1][1] if stack else NO_ROUTE)

        return (np.array(bounds, dtype=np.int64),
                np.array(owners, dtype=np.int64))

    def lookup(self, addresses: np.ndarray) -> np.ndarray:
        """Longest-prefix match a batch of integer addresses.

        Returns an int64 array of rows into :attr:`prefixes`, with
        :data:`NO_ROUTE` where no prefix covers the address.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        segments = np.searchsorted(self._bounds, addresses, side="right") - 1
        return self._owners[segments]

    def lookup_one(self, address: int) -> Prefix | None:
        """Scalar convenience mirroring :meth:`RoutingTable.resolve_prefix`."""
        row = int(self.lookup(np.array([address]))[0])
        return None if row == NO_ROUTE else self.prefixes[row]


class FixedLengthResolver:
    """Map addresses to fixed-length covering prefixes, no RIB needed.

    This is the "/L granularity" fallback for captures without routing
    data: every destination belongs to the /``length`` prefix containing
    it, and the flow population is discovered from the traffic itself.
    Rows are assigned in order of first appearance, so the mapping is
    dynamic — exactly what the streaming aggregator expects.
    """

    def __init__(self, length: int) -> None:
        if not 0 <= length <= 32:
            raise RoutingError(f"prefix length {length} out of range 0..32")
        self.length = length
        self._shift = 32 - length
        # known networks kept sorted, with their rows aligned, so the
        # steady-state lookup is one binary search and one gather — no
        # per-network Python work once the population stops growing
        self._known = np.empty(0, dtype=np.int64)
        self._known_rows = np.empty(0, dtype=np.int64)
        self.prefixes: list[Prefix] = []

    def __len__(self) -> int:
        return len(self.prefixes)

    def lookup(self, addresses: np.ndarray) -> np.ndarray:
        """Resolve a batch of addresses, growing the population as needed."""
        addresses = np.asarray(addresses, dtype=np.int64)
        networks = (addresses >> self._shift) << self._shift
        if self._known.size:
            positions = np.searchsorted(self._known, networks)
            clipped = np.minimum(positions, self._known.size - 1)
            if (self._known[clipped] == networks).all():
                return self._known_rows[clipped]
            fresh = np.unique(networks[self._known[clipped] != networks])
        else:
            fresh = np.unique(networks)
        # new networks earn rows in sorted order per batch, matching
        # the historical np.unique-iteration numbering
        rows = np.arange(len(self.prefixes),
                         len(self.prefixes) + fresh.size, dtype=np.int64)
        for network in fresh.tolist():
            self.prefixes.append(Prefix(int(network), self.length))
        spots = np.searchsorted(self._known, fresh)
        self._known = np.insert(self._known, spots, fresh)
        self._known_rows = np.insert(self._known_rows, spots, rows)
        clipped = np.minimum(np.searchsorted(self._known, networks),
                             self._known.size - 1)
        return self._known_rows[clipped]
