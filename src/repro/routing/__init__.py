"""BGP routing substrate: radix-trie LPM, RIB model, synthetic tables."""

from repro.routing.aspath import AsPath, AsTier, AutonomousSystem
from repro.routing.lpm import NO_ROUTE, CompiledLpm, FixedLengthResolver
from repro.routing.radix import RadixTree, brute_force_lookup
from repro.routing.rib import Route, RoutingTable
from repro.routing.ribgen import (
    DEFAULT_LENGTH_WEIGHTS,
    RibGeneratorConfig,
    generate_rib,
)

__all__ = [
    "AsPath",
    "AsTier",
    "AutonomousSystem",
    "CompiledLpm",
    "DEFAULT_LENGTH_WEIGHTS",
    "FixedLengthResolver",
    "NO_ROUTE",
    "RadixTree",
    "RibGeneratorConfig",
    "Route",
    "RoutingTable",
    "brute_force_lookup",
    "generate_rib",
]
