"""BGP routing substrate: radix-trie LPM, RIB model, synthetic tables."""

from repro.routing.aspath import AsPath, AsTier, AutonomousSystem
from repro.routing.radix import RadixTree, brute_force_lookup
from repro.routing.rib import Route, RoutingTable
from repro.routing.ribgen import (
    DEFAULT_LENGTH_WEIGHTS,
    RibGeneratorConfig,
    generate_rib,
)

__all__ = [
    "AsPath",
    "AsTier",
    "AutonomousSystem",
    "DEFAULT_LENGTH_WEIGHTS",
    "RadixTree",
    "RibGeneratorConfig",
    "Route",
    "RoutingTable",
    "brute_force_lookup",
    "generate_rib",
]
