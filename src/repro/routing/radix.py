"""A binary radix (Patricia) trie for longest-prefix match.

This is the lookup structure a router's FIB would use and the one we use
to map packet destination addresses onto BGP prefixes (the paper's flow
granularity). The trie is path-compressed: internal nodes store the bit
index they test, so lookup cost is bounded by the number of distinct
branching points on the path, not 32.

The implementation is deliberately explicit (one class per node, no
bit-twiddling tricks beyond what the algorithm requires) and is validated
against a brute-force matcher in the test suite.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from repro.errors import RoutingError
from repro.net import ipv4
from repro.net.prefix import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    """A trie node.

    Every node carries a ``prefix``; nodes created purely for branching
    ("glue" nodes) have ``value`` set to the ``_EMPTY`` sentinel and are
    not reported by lookups.
    """

    __slots__ = ("prefix", "value", "left", "right")

    def __init__(self, prefix: Prefix, value: object) -> None:
        self.prefix = prefix
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None

    @property
    def is_real(self) -> bool:
        return self.value is not _EMPTY


_EMPTY = object()


class RadixTree(Generic[V]):
    """Longest-prefix-match table mapping :class:`Prefix` to values.

    Supports insert, exact delete, exact get, longest-prefix lookup of an
    address, and iteration in prefix order. Duplicate inserts overwrite
    the stored value (BGP semantics: a new announcement replaces the old
    route for the same prefix).
    """

    def __init__(self) -> None:
        self._root: Optional[_Node[V]] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        return self._find_exact(prefix) is not None

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert ``prefix`` mapping to ``value`` (replacing any old value)."""
        if self._root is None:
            self._root = _Node(prefix, value)
            self._size += 1
            return
        self._root = self._insert_below(self._root, prefix, value)

    def _insert_below(self, node: _Node[V], prefix: Prefix, value: V) -> _Node[V]:
        common = ipv4.common_prefix_length(
            node.prefix.network, prefix.network,
            limit=min(node.prefix.length, prefix.length),
        )

        if common < node.prefix.length and common < prefix.length:
            # Split: create a glue node at the divergence point.
            glue = _Node(Prefix.from_host(prefix.network, common), _EMPTY)
            if ipv4.bit_at(node.prefix.network, common):
                glue.right = node
            else:
                glue.left = node
            new_node = _Node(prefix, value)
            if ipv4.bit_at(prefix.network, common):
                glue.right = new_node
            else:
                glue.left = new_node
            self._size += 1
            return glue

        if common == node.prefix.length == prefix.length:
            # Same prefix: overwrite (or materialise a glue node).
            if not node.is_real:
                self._size += 1
            node.value = value
            return node

        if common == prefix.length:
            # ``prefix`` is shorter: it becomes the parent of ``node``.
            new_node = _Node(prefix, value)
            if ipv4.bit_at(node.prefix.network, prefix.length):
                new_node.right = node
            else:
                new_node.left = node
            self._size += 1
            return new_node

        # ``prefix`` is longer and ``node.prefix`` covers it: descend.
        if ipv4.bit_at(prefix.network, node.prefix.length):
            if node.right is None:
                node.right = _Node(prefix, value)
                self._size += 1
            else:
                node.right = self._insert_below(node.right, prefix, value)
        else:
            if node.left is None:
                node.left = _Node(prefix, value)
                self._size += 1
            else:
                node.left = self._insert_below(node.left, prefix, value)
        return node

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def lookup(self, address: int) -> Optional[tuple[Prefix, V]]:
        """Longest-prefix match for an integer ``address``.

        Returns the matching ``(prefix, value)`` pair or ``None`` when no
        stored prefix covers the address.
        """
        best: Optional[_Node[V]] = None
        node = self._root
        while node is not None:
            if not node.prefix.contains_address(address):
                break
            if node.is_real:
                best = node
            if node.prefix.length >= ipv4.ADDRESS_BITS:
                break
            if ipv4.bit_at(address, node.prefix.length):
                node = node.right
            else:
                node = node.left
        if best is None:
            return None
        return best.prefix, best.value

    def lookup_prefix(self, address: int) -> Optional[Prefix]:
        """Like :meth:`lookup` but returns only the matching prefix."""
        match = self.lookup(address)
        return None if match is None else match[0]

    def get(self, prefix: Prefix) -> Optional[V]:
        """Exact-match retrieval; ``None`` when absent."""
        node = self._find_exact(prefix)
        return None if node is None else node.value  # type: ignore[return-value]

    def _find_exact(self, prefix: Prefix) -> Optional[_Node[V]]:
        node = self._root
        while node is not None:
            if node.prefix.length > prefix.length:
                return None
            if not node.prefix.contains(prefix):
                return None
            if node.prefix.length == prefix.length:
                return node if (node.is_real and node.prefix == prefix) else None
            if ipv4.bit_at(prefix.network, node.prefix.length):
                node = node.right
            else:
                node = node.left
        return None

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete(self, prefix: Prefix) -> V:
        """Remove ``prefix`` and return its value.

        Raises :class:`~repro.errors.RoutingError` when the prefix is not
        present (exact match).
        """
        node = self._find_exact(prefix)
        if node is None:
            raise RoutingError(f"prefix {prefix} not in table")
        value = node.value
        node.value = _EMPTY
        self._size -= 1
        self._root = self._prune(self._root)
        return value  # type: ignore[return-value]

    def _prune(self, node: Optional[_Node[V]]) -> Optional[_Node[V]]:
        """Drop empty leaves and splice out single-child glue nodes."""
        if node is None:
            return None
        node.left = self._prune(node.left)
        node.right = self._prune(node.right)
        if node.is_real:
            return node
        children = [child for child in (node.left, node.right) if child]
        if not children:
            return None
        if len(children) == 1:
            return children[0]
        return node

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[tuple[Prefix, V]]:
        """Yield ``(prefix, value)`` pairs in lexicographic prefix order."""
        yield from self._walk(self._root)

    def _walk(self, node: Optional[_Node[V]]) -> Iterator[tuple[Prefix, V]]:
        if node is None:
            return
        if node.is_real:
            yield node.prefix, node.value  # type: ignore[misc]
        yield from self._walk(node.left)
        yield from self._walk(node.right)

    def prefixes(self) -> list[Prefix]:
        """All stored prefixes, in iteration order."""
        return [prefix for prefix, _ in self]


def brute_force_lookup(
    entries: list[tuple[Prefix, V]], address: int
) -> Optional[tuple[Prefix, V]]:
    """Reference longest-prefix match by linear scan.

    Used by the test suite as ground truth for :class:`RadixTree`.
    """
    best: Optional[tuple[Prefix, V]] = None
    for prefix, value in entries:
        if prefix.contains_address(address):
            if best is None or prefix.length > best[0].length:
                best = (prefix, value)
    return best
