"""Synthetic BGP RIB generation.

The paper's traces came with BGP tables from Sprint's backbone; we do not
have those, so this module builds statistically plausible RIBs instead:

- a prefix-length distribution matching what backbone tables looked like
  circa 2001 (the bulk at /24 and /16-/23, a thin population of short
  prefixes including roughly a hundred /8s),
- origin ASes drawn from a three-tier hierarchy (Tier-1 clique, Tier-2
  regionals, stubs), and
- AS paths of realistic lengths ending at the origin.

Generation is fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import RoutingError
from repro.net import ipv4
from repro.net.prefix import Prefix
from repro.routing.aspath import AsPath, AsTier, AutonomousSystem
from repro.routing.rib import Route, RoutingTable

#: Default mix of prefix lengths, loosely following backbone RIB snapshots
#: from the paper's era: /24 dominates, /16 is the second mode, short
#: prefixes are rare. Values are relative weights, not probabilities.
DEFAULT_LENGTH_WEIGHTS: dict[int, float] = {
    8: 0.8,
    9: 0.2,
    10: 0.3,
    11: 0.5,
    12: 0.8,
    13: 1.0,
    14: 1.8,
    15: 1.8,
    16: 9.0,
    17: 1.5,
    18: 2.5,
    19: 4.5,
    20: 3.5,
    21: 3.0,
    22: 3.5,
    23: 4.0,
    24: 52.0,
    25: 1.0,
    26: 1.2,
    27: 0.8,
    28: 0.6,
    29: 0.7,
    30: 0.5,
}

#: Share of routes originated by each AS tier. Most routes are originated
#: by edge networks, but a visible share belongs to other large ISPs --
#: the population the paper found its elephants in.
DEFAULT_TIER_SHARES: dict[AsTier, float] = {
    AsTier.TIER1: 0.18,
    AsTier.TIER2: 0.37,
    AsTier.STUB: 0.45,
}


@dataclass
class RibGeneratorConfig:
    """Parameters for :func:`generate_rib`.

    ``num_routes`` is the table size. ``num_slash8`` forces that many /8
    routes into the table regardless of the weight mix (the paper reports
    about 100 active /8 networks). Tier populations control how many
    distinct ASes exist per tier.
    """

    num_routes: int = 5000
    num_slash8: int = 100
    length_weights: dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_LENGTH_WEIGHTS)
    )
    tier_shares: dict[AsTier, float] = field(
        default_factory=lambda: dict(DEFAULT_TIER_SHARES)
    )
    num_tier1: int = 12
    num_tier2: int = 120
    num_stub: int = 2500
    max_path_length: int = 6
    seed: int = 2001

    def validate(self) -> None:
        if self.num_routes <= 0:
            raise RoutingError("num_routes must be positive")
        if self.num_slash8 < 0 or self.num_slash8 > 256:
            raise RoutingError("num_slash8 must be within 0..256")
        if self.num_slash8 > self.num_routes:
            raise RoutingError("num_slash8 cannot exceed num_routes")
        if not self.length_weights:
            raise RoutingError("length_weights must not be empty")
        for length in self.length_weights:
            if not 1 <= length <= 30:
                raise RoutingError(f"prefix length {length} outside 1..30")
        if any(weight < 0 for weight in self.length_weights.values()):
            raise RoutingError("length weights must be non-negative")
        total_share = sum(self.tier_shares.values())
        if total_share <= 0:
            raise RoutingError("tier shares must sum to a positive value")
        if self.max_path_length < 1:
            raise RoutingError("max_path_length must be >= 1")


def build_as_registry(config: RibGeneratorConfig,
                      rng: np.random.Generator) -> dict[AsTier, list[AutonomousSystem]]:
    """Create the AS populations for each tier.

    Tier-1 ASes get small, memorable numbers (as the real clique does);
    the rest are drawn from disjoint ranges so numbers never collide.
    """
    tier1_numbers = rng.choice(
        np.arange(100, 7000), size=config.num_tier1, replace=False
    )
    tier2_numbers = rng.choice(
        np.arange(7000, 20000), size=config.num_tier2, replace=False
    )
    stub_numbers = rng.choice(
        np.arange(20000, 64000), size=config.num_stub, replace=False
    )
    return {
        AsTier.TIER1: [
            AutonomousSystem(int(number), AsTier.TIER1, f"tier1-{index}")
            for index, number in enumerate(sorted(tier1_numbers))
        ],
        AsTier.TIER2: [
            AutonomousSystem(int(number), AsTier.TIER2, f"tier2-{index}")
            for index, number in enumerate(sorted(tier2_numbers))
        ],
        AsTier.STUB: [
            AutonomousSystem(int(number), AsTier.STUB, f"stub-{index}")
            for index, number in enumerate(sorted(stub_numbers))
        ],
    }


def _sample_lengths(config: RibGeneratorConfig,
                    rng: np.random.Generator) -> np.ndarray:
    """Draw prefix lengths for the non-/8 part of the table."""
    weights = {
        length: weight
        for length, weight in config.length_weights.items()
        if length != 8
    }
    lengths = np.array(sorted(weights), dtype=np.int64)
    probabilities = np.array([weights[int(L)] for L in lengths], dtype=float)
    probabilities = probabilities / probabilities.sum()
    count = config.num_routes - config.num_slash8
    return rng.choice(lengths, size=count, p=probabilities)


def _random_path(origin: AutonomousSystem,
                 registry: dict[AsTier, list[AutonomousSystem]],
                 config: RibGeneratorConfig,
                 rng: np.random.Generator) -> AsPath:
    """Build a loop-free AS path terminating at ``origin``.

    The path walks "down" the hierarchy: it starts at a Tier-1 (the
    observation point is a Tier-1 backbone) and descends towards the
    origin, which keeps paths realistic without simulating full BGP.
    """
    hops: list[int] = []
    tier1 = registry[AsTier.TIER1]
    first = tier1[int(rng.integers(0, len(tier1)))]
    if first.number != origin.number:
        hops.append(first.number)
    if origin.tier is AsTier.STUB and rng.random() < 0.7:
        tier2 = registry[AsTier.TIER2]
        middle = tier2[int(rng.integers(0, len(tier2)))]
        if middle.number not in hops and middle.number != origin.number:
            hops.append(middle.number)
    hops.append(origin.number)
    # Occasional prepending, as seen in real tables.
    if len(hops) < config.max_path_length and rng.random() < 0.1:
        hops.append(origin.number)
    return AsPath(tuple(hops))


def generate_rib(config: RibGeneratorConfig | None = None) -> RoutingTable:
    """Generate a synthetic BGP RIB according to ``config``.

    The table contains exactly ``config.num_routes`` routes with unique
    prefixes, ``config.num_slash8`` of which are /8s. More-specific
    prefixes may nest inside shorter ones, as in real tables, which
    exercises true longest-prefix-match behaviour downstream.
    """
    if config is None:
        config = RibGeneratorConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)
    registry = build_as_registry(config, rng)

    tiers = list(config.tier_shares)
    tier_probabilities = np.array(
        [config.tier_shares[tier] for tier in tiers], dtype=float
    )
    tier_probabilities = tier_probabilities / tier_probabilities.sum()

    def draw_origin() -> AutonomousSystem:
        tier = tiers[int(rng.choice(len(tiers), p=tier_probabilities))]
        population = registry[tier]
        return population[int(rng.integers(0, len(population)))]

    table = RoutingTable()
    used: set[Prefix] = set()

    # The /8 population first: distinct first octets in 1..223 (unicast).
    first_octets = rng.choice(
        np.arange(1, 224), size=config.num_slash8, replace=False
    )
    for octet in sorted(int(o) for o in first_octets):
        prefix = Prefix(octet << 24, 8)
        origin = draw_origin()
        table.add(Route(prefix, _random_path(origin, registry, config, rng),
                        origin))
        used.add(prefix)

    lengths = _sample_lengths(config, rng)
    for length in lengths:
        length = int(length)
        prefix = _draw_unique_prefix(length, used, rng)
        origin = draw_origin()
        table.add(Route(prefix, _random_path(origin, registry, config, rng),
                        origin))
        used.add(prefix)
    return table


def _draw_unique_prefix(length: int, used: set[Prefix],
                        rng: np.random.Generator) -> Prefix:
    """Draw a unicast prefix of ``length`` bits not already in ``used``."""
    for _ in range(10_000):
        # Keep to 1.0.0.0 .. 223.255.255.255 (unicast space).
        first_octet = int(rng.integers(1, 224))
        rest = int(rng.integers(0, 1 << 24))
        address = (first_octet << 24) | rest
        prefix = Prefix.from_host(address, length)
        if prefix not in used:
            return prefix
    raise RoutingError(
        f"could not find a free /{length} prefix after many attempts"
    )
