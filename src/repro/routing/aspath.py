"""AS-level metadata for routes: AS paths, origin classes, peer tiers.

The paper's Section III observes that elephants "belong to other Tier-1
ISP providers". To support that analysis on synthetic data, every route
carries an origin AS annotated with a tier. The model is deliberately
simple: a Tier-1 clique, Tier-2 regionals, and stub/edge ASes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import RoutingError


class AsTier(enum.Enum):
    """Coarse position of an AS in the provider hierarchy."""

    TIER1 = "tier1"
    TIER2 = "tier2"
    STUB = "stub"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AutonomousSystem:
    """An AS number with its tier label and a display name."""

    number: int
    tier: AsTier
    name: str = ""

    def __post_init__(self) -> None:
        if not 0 < self.number < (1 << 32):
            raise RoutingError(f"AS number {self.number} out of range")

    def __str__(self) -> str:
        return f"AS{self.number}"


@dataclass(frozen=True)
class AsPath:
    """An ordered AS path, nearest AS first (as in a BGP UPDATE).

    The origin AS is the last element. Paths must be non-empty and may
    contain prepending (repeated ASes) but no loops of distinct ASes.
    """

    hops: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.hops:
            raise RoutingError("AS path must contain at least one AS")
        # Reject loops: an AS may repeat only in a contiguous prepend block.
        seen: set[int] = set()
        previous = None
        for hop in self.hops:
            if hop != previous and hop in seen:
                raise RoutingError(f"AS path {self.hops} contains a loop")
            seen.add(hop)
            previous = hop

    @property
    def origin(self) -> int:
        """The AS that originated the route (last hop)."""
        return self.hops[-1]

    @property
    def length(self) -> int:
        """Path length counting prepends, as BGP best-path selection does."""
        return len(self.hops)

    @property
    def unique_length(self) -> int:
        """Number of distinct ASes traversed."""
        return len(set(self.hops))

    def prepend(self, asn: int, count: int = 1) -> "AsPath":
        """Return a new path with ``asn`` prepended ``count`` times."""
        if count < 1:
            raise RoutingError("prepend count must be >= 1")
        return AsPath((asn,) * count + self.hops)

    def __str__(self) -> str:
        return " ".join(str(hop) for hop in self.hops)
