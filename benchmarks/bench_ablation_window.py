"""Ablation: the latent-heat window length.

The paper sums threshold distances over the previous hour (12 slots of
5 minutes). The sweep shows how the window trades responsiveness for
stability: window 1 is essentially the single-feature rule, while long
windows stretch holding times and crush one-slot elephants.
"""

from repro.analysis.holding import HoldingTimeAnalysis
from repro.analysis.report import format_table
from repro.core.latent_heat import LatentHeatClassifier
from repro.core.thresholds import ConstantLoadThreshold

WINDOWS = (1, 2, 6, 12, 18, 24)


def sweep_window(matrix, busy_hours):
    rows = []
    for window in WINDOWS:
        classifier = LatentHeatClassifier(
            ConstantLoadThreshold(0.8), window=window,
        )
        result = classifier.classify(matrix)
        analysis = HoldingTimeAnalysis.from_result(result,
                                                   busy_hours=busy_hours)
        full = HoldingTimeAnalysis.from_result(result, busy_hours=None)
        rows.append({
            "window": window,
            "holding_min": analysis.mean_minutes,
            "one_slot": full.single_interval_flows,
            "mean_count": float(result.elephants_per_slot().mean()),
        })
    return rows


def test_window_sweep(benchmark, paper_run, report_writer):
    matrix = paper_run.workloads["west-coast"].matrix
    rows = benchmark.pedantic(
        sweep_window, args=(matrix, paper_run.config.busy_hours),
        rounds=1, iterations=1,
    )

    table = format_table(
        ["window (slots)", "holding (min)", "one-slot flows",
         "mean elephants"],
        [[r["window"], f"{r['holding_min']:.0f}", r["one_slot"],
          round(r["mean_count"])] for r in rows],
        title=("Ablation: latent-heat window (paper uses 12 slots = "
               "1 hour)"),
    )
    report_writer("ablation_window", table)

    by_window = {r["window"]: r for r in rows}
    # Longer windows hold elephants longer and kill one-slot flows.
    assert by_window[12]["holding_min"] > 2 * by_window[1]["holding_min"]
    assert by_window[12]["one_slot"] < 0.5 * by_window[1]["one_slot"]
    assert by_window[24]["holding_min"] >= by_window[6]["holding_min"]
