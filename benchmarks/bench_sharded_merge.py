"""Accuracy and scaling of the shard → merge → classify dataflow.

Two questions a distributed deployment must answer before trusting a
collector's elephants:

1. **Merged accuracy** — a fleet of monitors each sees ``1/M`` of every
   flow (round-robin packet split, the hardest case for local
   detection) and runs a Space-Saving table of size K. After the
   collector merges and re-truncates the per-slot summaries, how much
   of the single-monitor exact run's elephant verdicts survive? The CI
   gate: at ``K = 4 x`` the true elephant count, merged recall must
   stay >= :data:`MIN_MERGED_RECALL`.
2. **Shard scaling** — `ShardedAggregation` splits the flow table
   without changing results; this bench records its ingest throughput
   per shard count so regressions in the routing/merge overhead are
   visible across PRs.

Both sets of numbers land in ``benchmarks/reports/`` twice: a human
table (``bench_sharded_merge.txt``) and a machine-readable
``BENCH_sharded_merge.json`` that CI uploads, so the accuracy/perf
trajectory can be diffed across commits.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.distributed import Collector, SlotSummary, StridedPacketSource
from repro.flows.matrix import RateMatrix
from repro.flows.records import TimeAxis
from repro.net.prefix import Prefix
from repro.pipeline import (
    AggregatingSlotSource,
    PcapPacketSource,
    StreamingAggregator,
    make_backend,
)
from repro.routing.lpm import CompiledLpm
from repro.sketches.streaming_eval import (
    BackendRun,
    run_backend,
    score_against,
)
from repro.traffic.packetize import PacketizerConfig, write_pcap

#: The CI gate: merged elephant recall at K = CAPACITY_FACTOR x true.
MIN_MERGED_RECALL = 0.85
CAPACITY_FACTOR = 4
#: Monitors in the merged-accuracy scenario (round-robin packet split).
NUM_MONITORS = 3
SHARD_COUNTS = (1, 2, 4)

NUM_ELEPHANTS = 10
NUM_MICE = 150
NUM_SLOTS = 6
SLOT_SECONDS = 60.0

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """Persistent elephants over a long tail of mice (as the sketch
    bench uses), realised once as a pcap."""
    rng = np.random.default_rng(4321)
    prefixes = [Prefix.parse(f"10.{i}.0.0/16")
                for i in range(NUM_ELEPHANTS)]
    prefixes += [Prefix.parse(f"172.{16 + i // 200}.{i % 200}.0/24")
                 for i in range(NUM_MICE)]
    axis = TimeAxis(0.0, SLOT_SECONDS, NUM_SLOTS)
    rates = np.zeros((len(prefixes), NUM_SLOTS))
    rates[:NUM_ELEPHANTS] = rng.uniform(4e4, 1e5,
                                        size=(NUM_ELEPHANTS, NUM_SLOTS))
    rates[NUM_ELEPHANTS:] = rng.uniform(5e2, 3e3,
                                        size=(NUM_MICE, NUM_SLOTS))
    rates[NUM_ELEPHANTS:][rng.random((NUM_MICE, NUM_SLOTS)) < 0.3] = 0.0
    matrix = RateMatrix(prefixes, axis, rates)
    path = str(tmp_path_factory.mktemp("sharded") / "elephants.pcap")
    packets = write_pcap(matrix, path, PacketizerConfig(seed=11))
    return path, list(prefixes), packets


def write_bench_json(payload: dict) -> None:
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, "BENCH_sharded_merge.json")
    existing = {}
    if os.path.exists(path):
        with open(path) as stream:
            existing = json.load(stream)
    existing.update(payload)
    with open(path, "w") as stream:
        json.dump(existing, stream, indent=2, sort_keys=True)


def monitor_summaries(path, prefixes, offset, capacity):
    """One monitor: 1/NUM_MONITORS of the packets, K-entry table."""
    source = StridedPacketSource(PcapPacketSource(path),
                                 NUM_MONITORS, offset)
    aggregator = StreamingAggregator(
        CompiledLpm(prefixes), slot_seconds=SLOT_SECONDS, start=0.0,
        backend=make_backend("space-saving", capacity=capacity),
    )
    slots = AggregatingSlotSource(source, aggregator)
    return [SlotSummary.from_frame(frame, SLOT_SECONDS,
                                   monitor=f"mon{offset}")
            for frame in slots.slots()]


def test_merged_monitor_recall(capture, report_writer):
    """The collector's elephants vs the single-monitor exact run."""
    path, prefixes, packets = capture
    make_source = lambda: PcapPacketSource(path)  # noqa: E731
    make_resolver = lambda: CompiledLpm(prefixes)  # noqa: E731

    reference = run_backend(make_source, make_resolver, SLOT_SECONDS)
    true_elephants = reference.peak_elephants
    capacity = CAPACITY_FACTOR * true_elephants

    runs = [monitor_summaries(path, prefixes, offset, capacity)
            for offset in range(NUM_MONITORS)]
    collector = Collector(runs, k=capacity)
    merged_sets = [frozenset(event.elephant_prefixes)
                   for event in collector.events()]
    series = collector.series()
    merged = BackendRun(
        backend=f"merged-space-saving x{NUM_MONITORS}",
        capacity=capacity,
        elephant_sets=merged_sets,
        peak_tracked=max(s.num_entries for s in collector.merged),
        population_rows=len(collector.pipeline().source.prefixes),
        mean_residual_fraction=series.mean_residual_fraction,
    )
    comparison = score_against(reference, merged)

    lines = [
        f"capture: {packets} packets, {len(prefixes)} prefixes, "
        f"{NUM_SLOTS} slots",
        f"monitors: {NUM_MONITORS} (round-robin packet split), "
        f"K = {CAPACITY_FACTOR} x {true_elephants} = {capacity} "
        "per monitor and post-merge",
        f"exact run: peak {true_elephants} elephants/slot, "
        f"mean {reference.mean_elephants:.1f}",
        "",
        f"merged recall    {comparison.recall:.3f}  "
        f"(gate: >= {MIN_MERGED_RECALL})",
        f"merged precision {comparison.precision:.3f}",
        f"merged churn     {comparison.churn:.3f} "
        f"(delta {comparison.churn_delta:+.3f})",
        f"residual share   {merged.mean_residual_fraction:.3f}",
    ]
    report_writer("bench_sharded_merge", "\n".join(lines))
    write_bench_json({"merged": {
        "monitors": NUM_MONITORS,
        "capacity": capacity,
        "true_elephants": true_elephants,
        "recall": round(comparison.recall, 4),
        "precision": round(comparison.precision, 4),
        "churn_delta": round(comparison.churn_delta, 4),
        "mean_residual_fraction":
            round(merged.mean_residual_fraction, 4),
        "min_recall_gate": MIN_MERGED_RECALL,
    }})

    assert len(merged_sets) == reference.num_slots
    # the merge-accuracy gate CI enforces
    assert comparison.recall >= MIN_MERGED_RECALL
    assert comparison.precision >= 0.5


def test_shard_scaling_throughput(capture, report_writer):
    """Sharded ingest: identical output, measured per-shard overhead."""
    path, prefixes, packets = capture
    totals = {}
    rates = {}
    for shards in SHARD_COUNTS:
        aggregator = StreamingAggregator(
            CompiledLpm(prefixes), slot_seconds=SLOT_SECONDS, start=0.0,
            backend=make_backend("exact", shards=shards),
        )
        started = time.perf_counter()
        frames = list(AggregatingSlotSource(
            PcapPacketSource(path), aggregator,
        ).slots())
        elapsed = time.perf_counter() - started
        totals[shards] = sum(float(f.rates.sum()) for f in frames)
        rates[shards] = aggregator.stats.packets_matched / elapsed

    # sharding must not change the aggregate traffic by a single bit
    baseline = totals[SHARD_COUNTS[0]]
    for shards in SHARD_COUNTS[1:]:
        assert totals[shards] == baseline

    lines = [f"capture: {packets} packets",
             "shards | packets/s"]
    lines += [f"{shards:6d} | {rates[shards]:12.0f}"
              for shards in SHARD_COUNTS]
    report_writer("bench_sharded_scaling", "\n".join(lines))
    write_bench_json({"shard_throughput_pps": {
        str(shards): round(rates[shards]) for shards in SHARD_COUNTS
    }})
    assert min(rates.values()) > 0
