"""Ablation: seed robustness of the reproduction.

The headline contrasts must not hinge on a lucky workload draw. This
bench re-simulates the west-coast link under three unrelated seeds and
checks that every qualitative claim holds for each of them.
"""

from repro.analysis.holding import HoldingTimeAnalysis
from repro.analysis.report import format_table
from repro.core.latent_heat import LatentHeatClassifier
from repro.core.single_feature import SingleFeatureClassifier
from repro.core.thresholds import ConstantLoadThreshold
from repro.traffic.scenarios import west_coast_link

SEEDS = (2401, 77, 90210)


def run_seeds(scale):
    rows = []
    for seed in SEEDS:
        workload = west_coast_link(scale=scale, seed=seed)
        single = SingleFeatureClassifier(
            ConstantLoadThreshold(0.8)).classify(workload.matrix)
        latent = LatentHeatClassifier(
            ConstantLoadThreshold(0.8)).classify(workload.matrix)
        single_hold = HoldingTimeAnalysis.from_result(single)
        latent_hold = HoldingTimeAnalysis.from_result(latent)
        rows.append({
            "seed": seed,
            "single_min": single_hold.mean_minutes,
            "latent_min": latent_hold.mean_minutes,
            "single_one": single_hold.single_interval_flows,
            "latent_one": latent_hold.single_interval_flows,
            "mean_count": float(latent.elephants_per_slot().mean()),
            "fraction": float(latent.traffic_fraction_per_slot().mean()),
        })
    return rows


def test_seed_robustness(benchmark, paper_run, report_writer):
    scale = paper_run.config.scale
    rows = benchmark.pedantic(run_seeds, args=(scale,),
                              rounds=1, iterations=1)

    table = format_table(
        ["seed", "SF holding (min)", "LH holding (min)",
         "SF one-slot", "LH one-slot", "LH elephants", "LH fraction"],
        [[r["seed"], f"{r['single_min']:.0f}", f"{r['latent_min']:.0f}",
          r["single_one"], r["latent_one"], round(r["mean_count"]),
          f"{r['fraction']:.2f}"] for r in rows],
        title=(f"Ablation: workload seed (west-coast, scale={scale:g}; "
               "every qualitative claim must hold per seed)"),
    )
    report_writer("ablation_seeds", table)

    for row in rows:
        assert 10 < row["single_min"] < 60, row
        assert row["latent_min"] > 2 * row["single_min"], row
        assert row["latent_one"] < 0.3 * row["single_one"], row
        assert 0.4 < row["fraction"] < 0.85, row
