"""Extension: the paper's schemes vs other separation rules.

Beyond "aest" and "0.8-constant-load", practical systems used fixed
top-k budgets, absolute capacity-fraction cutoffs, and mean-plus-k-std
outlier rules. This bench runs all five under the same EWMA + latent
heat machinery and reports population size, coverage and churn — the
dimensions on which a TE operator would choose.
"""

from repro.analysis.churn import ChurnReport
from repro.analysis.report import format_table
from repro.core.alternatives import (
    CapacityFractionThreshold,
    MeanPlusStdThreshold,
    TopKThreshold,
)
from repro.core.latent_heat import LatentHeatClassifier
from repro.core.thresholds import AestThreshold, ConstantLoadThreshold
from repro.traffic.linksim import OC12_CAPACITY_BPS


def run_schemes(matrix):
    detectors = [
        AestThreshold(),
        ConstantLoadThreshold(0.8),
        TopKThreshold(k=max(1, matrix.num_flows // 12)),
        CapacityFractionThreshold(OC12_CAPACITY_BPS, fraction=2e-4),
        MeanPlusStdThreshold(k=3.0),
    ]
    rows = []
    for detector in detectors:
        result = LatentHeatClassifier(detector).classify(matrix)
        churn = ChurnReport.from_result(result)
        rows.append({
            "scheme": detector.name,
            "mean_count": float(result.elephants_per_slot().mean()),
            "fraction": float(result.traffic_fraction_per_slot().mean()),
            "overlap": churn.class_overlap,
            "transitions": churn.total_transitions,
            "fallbacks": len(result.thresholds.fallback_slots),
        })
    return rows


def test_scheme_comparison(benchmark, paper_run, report_writer):
    matrix = paper_run.workloads["west-coast"].matrix
    rows = benchmark.pedantic(run_schemes, args=(matrix,),
                              rounds=1, iterations=1)

    table = format_table(
        ["scheme", "mean elephants", "traffic fraction", "set overlap",
         "transitions", "fallbacks"],
        [[r["scheme"], round(r["mean_count"]), f"{r['fraction']:.2f}",
          f"{r['overlap']:.3f}", r["transitions"], r["fallbacks"]]
         for r in rows],
        title=("Extension: separation schemes under latent heat "
               "(west-coast link)"),
    )
    report_writer("ext_scheme_comparison", table)

    by_scheme = {r["scheme"]: r for r in rows}
    # The paper's two schemes must land in the same coverage regime.
    aest = by_scheme["aest"]
    constant = by_scheme["0.8-constant-load"]
    assert abs(aest["fraction"] - constant["fraction"]) < 0.25
    # The mean+std rule collapses to a tiny class on heavy tails.
    mean_std = by_scheme["mean+3std"]
    assert mean_std["mean_count"] < 0.5 * constant["mean_count"]
    # Every scheme keeps a stable class under latent heat.
    for row in rows:
        assert row["overlap"] > 0.5, row["scheme"]
