"""Throughput gate for the array-native sketch engine.

The bounded-memory path is the configuration a line-rate monitor
actually runs, so its ingestion throughput is a first-class deliverable
next to its accuracy. This bench streams one synthetic backbone trace
(persistent elephants over a deep tail of mice — the paper's regime,
where most packets belong to flows the candidate table will never
keep) through every sketch backend under both execution engines and
reports packets per second.

The CI gate asserts the **array engine reaches >= 3x the scalar
engine's packets/s for space-saving at K = 512**
(:data:`MIN_SPEEDUP`) — space-saving is the fastest scalar baseline,
so it is the binding ratio. The other backends' ratios ride along in
``BENCH_sketch_ingest.json`` so the perf trajectory stays
machine-readable across PRs. Byte conservation between the engines is
asserted unconditionally: speed that loses traffic does not count.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.pipeline import (
    AggregatingSlotSource,
    ArrayPacketSource,
    StreamingAggregator,
    make_backend,
)
from repro.routing.lpm import FixedLengthResolver

#: The CI gate: array-engine vs scalar-engine packets/s, space-saving.
MIN_SPEEDUP = 3.0

SKETCH_NAMES = ("space-saving", "misra-gries", "count-min")
CAPACITY = 512
PACKETS = 400_000
NUM_ELEPHANTS = 12
#: Deep mouse tail: most packets miss the candidate table, which is
#: exactly the churn regime that separates the two engines.
NUM_MICE = 20_000
NUM_SLOTS = 5
SLOT_SECONDS = 60.0
CHUNK_PACKETS = 4096
PREFIX_LENGTH = 16

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def write_bench_json(payload: dict) -> None:
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, "BENCH_sketch_ingest.json")
    with open(path, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def trace():
    """A backbone-shaped packet trace as picklable columnar arrays."""
    rng = np.random.default_rng(20020811)
    horizon = NUM_SLOTS * SLOT_SECONDS
    flows = NUM_ELEPHANTS + NUM_MICE
    weights = np.concatenate(
        [
            np.full(NUM_ELEPHANTS, 120.0),
            rng.pareto(1.3, NUM_MICE) + 0.2,
        ]
    )
    flow = rng.choice(flows, size=PACKETS, p=weights / weights.sum())
    timestamps = np.sort(rng.uniform(0.0, horizon, PACKETS))
    destinations = (10 << 24) | (flow.astype(np.int64) << 16) | 9
    sizes = np.where(
        flow < NUM_ELEPHANTS,
        rng.integers(700, 1500, PACKETS),
        rng.integers(64, 600, PACKETS),
    ).astype(np.int64)
    return timestamps, destinations, sizes


def ingest(trace, backend_name, engine=None):
    """One full streaming pass; returns (packets/s, bytes accounted)."""
    timestamps, destinations, sizes = trace
    kwargs = {}
    if backend_name != "exact":
        kwargs = {"capacity": CAPACITY, "engine": engine}
    aggregator = StreamingAggregator(
        FixedLengthResolver(PREFIX_LENGTH),
        slot_seconds=SLOT_SECONDS,
        backend=make_backend(backend_name, **kwargs),
    )
    source = ArrayPacketSource(
        timestamps, destinations, sizes, chunk_packets=CHUNK_PACKETS
    )
    started = time.perf_counter()
    frames = list(AggregatingSlotSource(source, aggregator).slots())
    elapsed = time.perf_counter() - started
    assert len(frames) == NUM_SLOTS
    assert aggregator.stats.packets_matched == PACKETS
    accounted = sum(float(f.rates.sum()) for f in frames)
    accounted *= SLOT_SECONDS / 8.0
    assert np.isclose(accounted, aggregator.stats.bytes_matched)
    return aggregator.stats.packets_matched / elapsed, accounted


def test_sketch_ingest_gate(trace, report_writer):
    exact_pps, _ = ingest(trace, "exact")
    throughput = {}
    speedup = {}
    for name in SKETCH_NAMES:
        scalar_pps, scalar_bytes = ingest(trace, name, engine="scalar")
        array_pps, array_bytes = ingest(trace, name, engine="array")
        # both engines must account for the same traffic to the byte
        assert np.isclose(scalar_bytes, array_bytes)
        throughput[name] = {"scalar": scalar_pps, "array": array_pps}
        speedup[name] = array_pps / scalar_pps

    lines = [
        f"trace: {PACKETS} packets, {NUM_ELEPHANTS + NUM_MICE} flows, "
        f"{NUM_SLOTS} slots, K={CAPACITY}, chunk={CHUNK_PACKETS}",
        f"exact reference: {exact_pps:12.0f} packets/s",
        "backend       | scalar pkt/s | array pkt/s  | array/scalar",
    ]
    lines += [
        f"{name:13s} | {throughput[name]['scalar']:12.0f} | "
        f"{throughput[name]['array']:12.0f} | {speedup[name]:.2f}x"
        for name in SKETCH_NAMES
    ]
    lines.append(
        f"gate: space-saving array >= {MIN_SPEEDUP}x scalar (enforced)"
    )
    report_writer("bench_sketch_ingest", "\n".join(lines))
    write_bench_json(
        {
            "packets": PACKETS,
            "flows": NUM_ELEPHANTS + NUM_MICE,
            "capacity": CAPACITY,
            "chunk_packets": CHUNK_PACKETS,
            "exact_pps": round(exact_pps),
            "scalar_pps": {
                name: round(throughput[name]["scalar"])
                for name in SKETCH_NAMES
            },
            "array_pps": {
                name: round(throughput[name]["array"])
                for name in SKETCH_NAMES
            },
            "speedup": {
                name: round(speedup[name], 3) for name in SKETCH_NAMES
            },
            "min_speedup_gate": MIN_SPEEDUP,
            "gated_backend": "space-saving",
        }
    )

    # the CI gate: the engine swap must pay for itself where the
    # scalar baseline is fastest
    assert speedup["space-saving"] >= MIN_SPEEDUP
