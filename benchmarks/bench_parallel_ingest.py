"""Parallel-scaling gate for true multi-process ingestion.

The worker-per-shard runner only earns its process overhead if adding
workers buys throughput. This bench ingests one synthetic backbone
trace (persistent elephants over a long tail of mice, the paper's
regime) through ``parallel_ingest`` at 1, 2 and 4 workers with a
Space-Saving backend — the bounded-memory configuration a line-rate
monitor actually runs — and through the in-process sharded aggregator
as the single-process baseline.

The transport under test is the zero-copy shared-memory ring
(:mod:`repro.distributed.shm_ring`): the reader writes dealt column
sub-batches straight into per-worker ``/dev/shm`` slots and only
``(slot, final)`` descriptors cross a queue, replacing PR 4's
pickled-``Queue`` hop whose serialization cost made the fleet *lose*
throughput as workers were added (0.66x at 2 workers, 0.44x at 4 on
the recorded PR 4 numbers).

The CI gate asserts **>= 1.5x ingestion throughput at 4 workers vs 1
worker** (:data:`MIN_SPEEDUP_AT_4`). The gate needs real parallelism,
so it is enforced only when the machine has at least 4 CPUs (the CI
runners do); on smaller boxes the numbers are still measured, written
to ``BENCH_parallel_ingest.json`` and reported, but the assertion is
skipped — a 1-core container cannot exhibit a speedup that the
hardware does not offer.

Byte conservation across worker counts is asserted unconditionally:
however the fleet scales, the merged summaries must account for every
matched byte.
"""

import json
import math
import os
import time

import numpy as np
import pytest

from repro.distributed import DEFAULT_RING_SLOTS, parallel_ingest
from repro.pipeline import (
    AggregatingSlotSource,
    ArrayPacketSource,
    StreamingAggregator,
    make_backend,
)
from repro.routing.lpm import FixedLengthResolver

#: The CI gate: ingestion throughput at 4 workers vs 1 worker.
MIN_SPEEDUP_AT_4 = 1.5
WORKER_COUNTS = (1, 2, 4)

NUM_ELEPHANTS = 12
NUM_MICE = 6000
NUM_SLOTS = 5
SLOT_SECONDS = 60.0
#: Sized so the worker stage dominates process startup and the serial
#: reader stage (~6:1 worker:reader on a dev box) — small enough for a
#: CI runner, large enough that a 4-worker fleet can actually win.
PACKETS = 1_200_000
CAPACITY = 512
CHUNK_PACKETS = 4096
PREFIX_LENGTH = 16

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def write_bench_json(payload: dict) -> None:
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, "BENCH_parallel_ingest.json")
    with open(path, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def trace():
    """A backbone-shaped packet trace as picklable columnar arrays."""
    rng = np.random.default_rng(20020811)
    horizon = NUM_SLOTS * SLOT_SECONDS
    flows = NUM_ELEPHANTS + NUM_MICE
    # elephants send persistently; mice burst a handful of packets
    weights = np.concatenate([
        np.full(NUM_ELEPHANTS, 120.0),
        rng.pareto(1.3, NUM_MICE) + 0.2,
    ])
    flow = rng.choice(flows, size=PACKETS, p=weights / weights.sum())
    timestamps = np.sort(rng.uniform(0.0, horizon, PACKETS))
    destinations = (10 << 24) | (flow.astype(np.int64) << 16) | 9
    sizes = np.where(
        flow < NUM_ELEPHANTS,
        rng.integers(700, 1500, PACKETS),
        rng.integers(64, 600, PACKETS),
    ).astype(np.int64)
    return timestamps, destinations, sizes


def make_source(trace):
    timestamps, destinations, sizes = trace
    return ArrayPacketSource(timestamps, destinations, sizes,
                             chunk_packets=CHUNK_PACKETS)


def test_parallel_scaling_gate(trace, report_writer):
    """1→N worker throughput, the 4-vs-1 gate, and byte conservation."""
    # single-process baseline: same hash split, one process
    aggregator = StreamingAggregator(
        FixedLengthResolver(PREFIX_LENGTH), slot_seconds=SLOT_SECONDS,
        backend=make_backend("space-saving", capacity=CAPACITY,
                             shards=max(WORKER_COUNTS)),
    )
    started = time.perf_counter()
    frames = list(AggregatingSlotSource(make_source(trace),
                                        aggregator).slots())
    baseline_elapsed = time.perf_counter() - started
    baseline_pps = aggregator.stats.packets_matched / baseline_elapsed
    assert len(frames) == NUM_SLOTS

    throughput = {}
    totals = {}
    for workers in WORKER_COUNTS:
        started = time.perf_counter()
        result = parallel_ingest(
            make_source(trace), FixedLengthResolver(PREFIX_LENGTH),
            workers=workers, slot_seconds=SLOT_SECONDS,
            backend="space-saving", capacity=CAPACITY,
        )
        elapsed = time.perf_counter() - started
        throughput[workers] = result.stats.packets_matched / elapsed
        totals[workers] = sum(summary.total_bytes
                              for run in result.runs for summary in run)
        assert result.stats.packets_matched == PACKETS

    # every byte conserved at every fleet size, parallel or not
    matched = float(aggregator.stats.bytes_matched)
    for workers, streamed in totals.items():
        assert math.isclose(streamed, matched, rel_tol=1e-9), \
            f"{workers} workers leaked bytes: {streamed} vs {matched}"

    speedup = {workers: throughput[workers] / throughput[1]
               for workers in WORKER_COUNTS}
    cpus = os.cpu_count() or 1
    gated = cpus >= max(WORKER_COUNTS)

    lines = [
        f"trace: {PACKETS} packets, {NUM_ELEPHANTS + NUM_MICE} flows, "
        f"{NUM_SLOTS} slots, space-saving K={CAPACITY}",
        f"single-process baseline: {baseline_pps:12.0f} packets/s",
        "workers | packets/s    | speedup vs 1 worker",
    ]
    lines += [
        f"{workers:7d} | {throughput[workers]:12.0f} | "
        f"{speedup[workers]:.2f}x"
        for workers in WORKER_COUNTS
    ]
    lines.append(
        f"gate: >= {MIN_SPEEDUP_AT_4}x at 4 workers "
        f"({'enforced' if gated else f'skipped, only {cpus} cpu(s)'})"
    )
    report_writer("bench_parallel_ingest", "\n".join(lines))
    write_bench_json({
        "transport": "shm-ring",
        "ring_slots": DEFAULT_RING_SLOTS,
        "packets": PACKETS,
        "capacity": CAPACITY,
        "single_process_pps": round(baseline_pps),
        "parallel_pps": {str(workers): round(throughput[workers])
                         for workers in WORKER_COUNTS},
        "speedup_vs_1_worker": {str(workers): round(speedup[workers], 3)
                                for workers in WORKER_COUNTS},
        "min_speedup_gate": MIN_SPEEDUP_AT_4,
        "gate_enforced": gated,
        "cpu_count": cpus,
    })

    if not gated:
        pytest.skip(
            f"scaling gate needs >= {max(WORKER_COUNTS)} CPUs; "
            f"this machine has {cpus} (numbers recorded above)"
        )
    # the CI gate: 4 workers must beat 1 worker by the floor factor
    assert speedup[max(WORKER_COUNTS)] >= MIN_SPEEDUP_AT_4
