"""Figure 1(c): histogram of average holding times in the elephant state.

Paper shape (with latent heat, busy period, 5-minute slots): mean
around two hours (~24 slots), a long tail out to 60 slots, and only a
few tens of flows at exactly one slot.
"""

from repro.analysis.report import format_table
from repro.experiments.figures import Figure1c


def test_fig1c_holding_times(benchmark, paper_run, report_writer):
    figure = benchmark.pedantic(
        Figure1c.from_run, args=(paper_run,), rounds=1, iterations=1,
    )

    rows = []
    for label, analysis in figure.analyses.items():
        histogram = analysis.histogram()
        one_slot = int(histogram.counts[1]) if histogram.counts.size > 1 else 0
        rows.append([
            label,
            f"{analysis.mean_minutes / 60.0:.2f}",
            one_slot,
            analysis.per_flow_mean_slots.size,
        ])
    table = format_table(
        ["curve", "mean holding (hours)", "one-slot flows",
         "flows ever elephant"],
        rows,
        title=("Fig 1(c) average holding time in the elephant state "
               "(paper: ~2 h mean, ~50 one-slot flows)"),
    )
    report_writer("fig1c_holding_times", table + "\n\n" + figure.render())

    for label, mean_slots in figure.mean_holding_slots().items():
        # ~2 h in the paper; accept a 45 min - 5 h band across scales.
        assert 9 < mean_slots < 60, label
    for label, analysis in figure.analyses.items():
        histogram = analysis.histogram()
        populated = [center for center, _ in histogram.nonzero_bins()]
        assert max(populated) > 12, label  # tail beyond one hour
