"""Ablation: the constant-load fraction β.

The paper fixes β = 0.8 ("0.8-constant load"). The sweep shows what β
buys: the elephant population grows with the requested coverage and
the achieved (latent-heat) coverage tracks but undershoots the target,
exactly as Fig 1(b) reports for 0.8.
"""

from repro.analysis.report import format_table
from repro.core.latent_heat import LatentHeatClassifier
from repro.core.thresholds import ConstantLoadThreshold

BETAS = (0.5, 0.6, 0.7, 0.8, 0.9)


def sweep_beta(matrix):
    rows = []
    for beta in BETAS:
        classifier = LatentHeatClassifier(ConstantLoadThreshold(beta))
        result = classifier.classify(matrix)
        rows.append({
            "beta": beta,
            "mean_count": float(result.elephants_per_slot().mean()),
            "fraction": float(result.traffic_fraction_per_slot().mean()),
        })
    return rows


def test_beta_sweep(benchmark, paper_run, report_writer):
    matrix = paper_run.workloads["west-coast"].matrix
    rows = benchmark.pedantic(sweep_beta, args=(matrix,),
                              rounds=1, iterations=1)

    table = format_table(
        ["beta (target)", "mean elephants", "achieved fraction",
         "shortfall"],
        [[r["beta"], round(r["mean_count"]), f"{r['fraction']:.2f}",
          f"{r['beta'] - r['fraction']:+.2f}"] for r in rows],
        title="Ablation: constant-load beta (paper fixes 0.8)",
    )
    report_writer("ablation_beta", table)

    counts = [r["mean_count"] for r in rows]
    assert all(b <= a * 1.1 for a, b in zip(counts[1:], counts)), \
        "population must grow with beta"
    fractions = [r["fraction"] for r in rows]
    assert all(b >= a - 0.02 for a, b in zip(fractions, fractions[1:])), \
        "achieved coverage must grow with beta"
