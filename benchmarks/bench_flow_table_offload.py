"""Byte coverage of a bounded flow-table offload vs table size F.

The operational payoff of a pragmatic elephant definition is a small
rule table: install a hardware rule per classified elephant and let
the mice take the slow path. This bench measures how much traffic such
a table actually captures as its capacity F varies around the true
elephant population — the curve the paper's "few flows, most bytes"
claim predicts should saturate quickly.

A heavy-tailed synthetic capture (persistent elephants over a long
tail of mice, the same shape as the sampled-recall bench) is streamed
through the full pipeline; each slot's verdict drives the
:class:`~repro.analysis.offload.FlowTableSimulator`, with coverage
scored at slot entry against the exact per-slot byte truth. The sweep
crosses F in {0.5x, 1x, 2x, 4x} the true elephant count with two
verdict backends: exact aggregation and a Space-Saving sketch at the
usual ``4 x`` capacity.

The CI gate: at ``F = 2 x`` true elephants with exact verdicts, byte
coverage must reach :data:`MIN_COVERAGE_AT_2X` with mean churn below
:data:`MAX_CHURN_FRACTION` of the table — rules for persistent
elephants should install once and stay, not flap.

Numbers land in ``benchmarks/reports/`` twice: a human table
(``bench_flow_table_offload.txt``) and
``BENCH_flow_table_offload.json`` for the CI artifact trail.
"""

import json
import os

import numpy as np
import pytest

from repro.analysis.offload import OffloadSpec, simulate_offload
from repro.flows.matrix import RateMatrix
from repro.flows.records import TimeAxis
from repro.net.prefix import Prefix
from repro.pipeline import (
    AggregatingSlotSource,
    PcapPacketSource,
    PipelineSpec,
    StreamingAggregator,
    StreamingPipeline,
)
from repro.routing.lpm import CompiledLpm
from repro.traffic.packetize import PacketizerConfig, write_pcap

#: The CI gate: pooled byte coverage at F = 2 x true elephants (exact
#: verdicts), and the churn bound at the same point.
MIN_COVERAGE_AT_2X = 0.70
MAX_CHURN_FRACTION = 0.5
#: Table sizes swept, as multiples of the true elephant count.
SIZE_FACTORS = (0.5, 1.0, 2.0, 4.0)
GATED_FACTOR = 2.0
BACKENDS = ("exact", "space-saving")
CAPACITY_FACTOR = 4

NUM_ELEPHANTS = 10
NUM_MICE = 150
NUM_SLOTS = 6
SLOT_SECONDS = 60.0

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """Persistent elephants over a long tail of mice, as a pcap."""
    rng = np.random.default_rng(4242)
    prefixes = [Prefix.parse(f"10.{i}.0.0/16")
                for i in range(NUM_ELEPHANTS)]
    prefixes += [Prefix.parse(f"172.{16 + i // 200}.{i % 200}.0/24")
                 for i in range(NUM_MICE)]
    axis = TimeAxis(0.0, SLOT_SECONDS, NUM_SLOTS)
    rates = np.zeros((len(prefixes), NUM_SLOTS))
    rates[:NUM_ELEPHANTS] = rng.uniform(2e5, 5e5,
                                        size=(NUM_ELEPHANTS, NUM_SLOTS))
    rates[NUM_ELEPHANTS:] = rng.uniform(5e2, 3e3,
                                        size=(NUM_MICE, NUM_SLOTS))
    rates[NUM_ELEPHANTS:][rng.random((NUM_MICE, NUM_SLOTS)) < 0.3] = 0.0
    matrix = RateMatrix(prefixes, axis, rates)
    path = str(tmp_path_factory.mktemp("offload") / "elephants.pcap")
    packets = write_pcap(matrix, path, PacketizerConfig(seed=31))
    return path, list(prefixes), packets


def write_bench_json(payload: dict) -> None:
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, "BENCH_flow_table_offload.json")
    existing = {}
    if os.path.exists(path):
        with open(path) as stream:
            existing = json.load(stream)
    existing.update(payload)
    with open(path, "w") as stream:
        json.dump(existing, stream, indent=2, sort_keys=True)


def stream_events(path, prefixes, spec):
    """Classified slot events for the capture under one backend."""
    aggregator = StreamingAggregator(
        CompiledLpm(prefixes), slot_seconds=SLOT_SECONDS, start=0.0,
        backend=spec.build_backend(),
    )
    pipeline = StreamingPipeline(
        AggregatingSlotSource(PcapPacketSource(path), aggregator)
    )
    return pipeline.events()


def exact_truth(path, prefixes):
    """Exact per-slot byte truth and the true elephant population.

    Returns ``(truth, totals, peak_elephants)`` where ``truth`` maps
    slot → {prefix: bytes} for every active non-residual flow and
    ``totals`` carries each slot's full byte volume, residual
    included — the denominators every sketch-backend run is scored
    against.
    """
    truth = {}
    totals = {}
    peak = 0
    spec = PipelineSpec(backend="exact")
    for event in stream_events(path, prefixes, spec):
        frame = event.frame
        slot_bytes = {}
        for row, rate in enumerate(frame.rates.tolist()):
            if row == frame.residual_row or rate <= 0.0:
                continue
            slot_bytes[frame.population[row]] = (
                rate * SLOT_SECONDS / 8.0
            )
        truth[frame.slot] = slot_bytes
        totals[frame.slot] = (
            float(frame.rates.sum()) * SLOT_SECONDS / 8.0
        )
        peak = max(peak, len(event.verdict.elephants()))
    return truth, totals, peak


def test_offload_coverage_sweep(capture, report_writer):
    """Coverage vs table size for exact and sketch verdicts."""
    path, prefixes, packets = capture
    truth, totals, true_elephants = exact_truth(path, prefixes)
    assert true_elephants > 0

    specs = {
        "exact": PipelineSpec(backend="exact"),
        "space-saving": PipelineSpec(
            backend="space-saving",
            capacity=CAPACITY_FACTOR * true_elephants,
        ),
    }
    reports = {}
    for backend in BACKENDS:
        for factor in SIZE_FACTORS:
            table_size = max(1, round(factor * true_elephants))
            report = simulate_offload(
                stream_events(path, prefixes, specs[backend]),
                OffloadSpec(table_size=table_size),
                SLOT_SECONDS,
                truth=truth,
                truth_totals=totals,
            )
            reports[(backend, factor)] = report

    lines = [
        f"capture: {packets} packets, {len(prefixes)} prefixes, "
        f"{NUM_SLOTS} slots",
        f"exact run: peak {true_elephants} elephants/slot; sketch at "
        f"K = {CAPACITY_FACTOR} x {true_elephants}",
        "",
        "backend      | F/true | F    | coverage | occupancy | churn",
    ]
    for backend in BACKENDS:
        for factor in SIZE_FACTORS:
            report = reports[(backend, factor)]
            lines.append(
                f"{backend:12s} | {factor:6.1f} | "
                f"{report.spec.table_size:4d} | "
                f"{report.byte_coverage:8.3f} | "
                f"{report.mean_occupancy:9.2f} | "
                f"{report.mean_churn:5.2f}"
            )
    gated = reports[("exact", GATED_FACTOR)]
    lines += [
        "",
        f"gate: coverage >= {MIN_COVERAGE_AT_2X} at F = "
        f"{GATED_FACTOR} x true elephants (exact verdicts), churn "
        f"<= {MAX_CHURN_FRACTION} x F",
        f"at the gate: coverage {gated.byte_coverage:.3f}, "
        f"mean churn {gated.mean_churn:.2f} over F = "
        f"{gated.spec.table_size}",
    ]
    report_writer("bench_flow_table_offload", "\n".join(lines))
    write_bench_json({"flow_table_offload": {
        "true_elephants": true_elephants,
        "sketch_capacity": CAPACITY_FACTOR * true_elephants,
        "curve": {
            backend: {
                str(factor): {
                    "table_size": reports[(backend, factor)].spec.table_size,
                    "coverage": round(
                        reports[(backend, factor)].byte_coverage, 4
                    ),
                    "mean_occupancy": round(
                        reports[(backend, factor)].mean_occupancy, 2
                    ),
                    "mean_churn": round(
                        reports[(backend, factor)].mean_churn, 2
                    ),
                }
                for factor in SIZE_FACTORS
            }
            for backend in BACKENDS
        },
        "gated_factor": GATED_FACTOR,
        "min_coverage_gate": MIN_COVERAGE_AT_2X,
        "max_churn_fraction": MAX_CHURN_FRACTION,
    }})

    # the gate: a table twice the elephant population captures the
    # bulk of the bytes without flapping
    assert gated.byte_coverage >= MIN_COVERAGE_AT_2X
    assert gated.mean_churn <= MAX_CHURN_FRACTION * gated.spec.table_size
    # the curve is monotone in F for each backend: more table never
    # covers fewer bytes
    for backend in BACKENDS:
        curve = [reports[(backend, f)].byte_coverage
                 for f in SIZE_FACTORS]
        assert curve == sorted(curve)
    # sketch verdicts track exact verdicts closely at the gated size
    sketch = reports[("space-saving", GATED_FACTOR)]
    assert sketch.byte_coverage >= MIN_COVERAGE_AT_2X - 0.05
