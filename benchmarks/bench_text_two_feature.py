"""In-text claim T2: latent heat fixes the volatility.

Paper: average holding time rises to about two hours, and the number
of single-interval elephants collapses from over a thousand to about
fifty.
"""

from repro.analysis.report import format_paper_comparison, format_table
from repro.core.engine import Feature
from repro.experiments.textstats import (
    SingleVsTwoFeature,
    volatility_grid,
)


def test_two_feature_stability(benchmark, paper_run, report_writer):
    contrast = benchmark.pedantic(
        SingleVsTwoFeature.from_run, args=(paper_run,),
        rounds=1, iterations=1,
    )
    grid = volatility_grid(paper_run, Feature.LATENT_HEAT)

    rows = [[
        stats.link, stats.scheme,
        f"{stats.mean_holding_minutes:.0f}",
        stats.single_interval_flows,
        stats.flows_ever_elephant,
    ] for stats in grid]
    table = format_table(
        ["link", "scheme", "holding (min, busy period)",
         "one-slot flows", "flows ever elephant"],
        rows,
        title="T2: two-feature (latent heat) stability",
    )
    comparison = format_paper_comparison([
        ("holding time with latent heat", "~120 min",
         f"{contrast.latent_mean_holding_minutes:.0f} min"),
        ("holding-time gain over single feature", "3-6x",
         f"{contrast.holding_gain:.1f}x"),
        ("one-slot flows with latent heat", "~50",
         f"{contrast.latent_one_slot_flows:.0f}"),
        ("one-slot collapse factor", ">20x",
         f"{contrast.one_slot_reduction:.0f}x"),
    ])
    report_writer("text_two_feature", table + "\n\n" + comparison)

    assert contrast.holding_gain > 2.0
    assert contrast.one_slot_reduction > 3.0
    assert 45 < contrast.latent_mean_holding_minutes < 300
