"""Ablation: the EWMA smoothing weight α.

The paper chose α = 0.9 because it made the threshold "sufficiently
smooth". The sweep shows the trade-off: small α lets the threshold
track per-slot noise (rough series, more reclassification), large α
reacts too slowly to genuine load shifts.
"""

import numpy as np

from repro.analysis.churn import ChurnReport
from repro.analysis.report import format_table
from repro.core.single_feature import SingleFeatureClassifier
from repro.core.thresholds import ConstantLoadThreshold

ALPHAS = (0.0, 0.5, 0.8, 0.9, 0.95, 0.99)


def sweep_alpha(matrix):
    rows = []
    for alpha in ALPHAS:
        classifier = SingleFeatureClassifier(
            ConstantLoadThreshold(0.8), alpha=alpha,
        )
        result = classifier.classify(matrix)
        churn = ChurnReport.from_result(result)
        rows.append({
            "alpha": alpha,
            "smoothness": result.thresholds.smoothness(),
            "transitions": churn.total_transitions,
            "overlap": churn.class_overlap,
            "mean_count": float(result.elephants_per_slot().mean()),
        })
    return rows


def test_alpha_sweep(benchmark, paper_run, report_writer):
    matrix = paper_run.workloads["west-coast"].matrix
    rows = benchmark.pedantic(sweep_alpha, args=(matrix,),
                              rounds=1, iterations=1)

    table = format_table(
        ["alpha", "threshold roughness", "total transitions",
         "set overlap", "mean elephants"],
        [[r["alpha"], f"{r['smoothness']:.4f}", r["transitions"],
          f"{r['overlap']:.3f}", round(r["mean_count"])] for r in rows],
        title=("Ablation: EWMA alpha (paper uses 0.9 for a "
               "'sufficiently smooth' threshold)"),
    )
    report_writer("ablation_alpha", table)

    by_alpha = {r["alpha"]: r for r in rows}
    # Smoothing must monotonically calm the threshold series.
    roughness = [by_alpha[a]["smoothness"] for a in ALPHAS]
    assert all(np.diff(roughness) <= 1e-12)
    # The paper's 0.9 must visibly beat no smoothing on churn.
    assert by_alpha[0.9]["transitions"] < by_alpha[0.0]["transitions"]
