"""Shared benchmark fixtures.

Every figure/table benchmark reads the same cached paper run (the
simulation and classification are produced once per session); the
``benchmark`` fixture then times the analysis stage that regenerates
the figure. Each bench also writes its rows to
``benchmarks/reports/<name>.txt`` so the reproduction record survives
pytest's output capturing, and prints them (visible with ``-s``).

Scale: ``REPRO_SCALE`` (default 0.5) controls the workload size; use
``REPRO_SCALE=1.0`` for the full paper-sized run recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import bench_config
from repro.experiments.runner import PaperRun, cached_paper_run

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def paper_run() -> PaperRun:
    """The shared simulate-and-classify run behind all figure benches."""
    return cached_paper_run(bench_config())


@pytest.fixture(scope="session")
def report_writer():
    """Write a named report file and echo it to stdout."""
    os.makedirs(REPORT_DIR, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = os.path.join(REPORT_DIR, f"{name}.txt")
        with open(path, "w") as stream:
            stream.write(text + "\n")
        print(f"\n===== {name} =====")
        print(text)

    return write
