"""Streaming-pipeline throughput: ingestion and classification rates.

Two hot paths get a trajectory here:

- **Ingestion**: the vectorized pcap scan + batch LPM + ``np.add.at``
  binning against the seed's per-packet decode/resolve/accumulate loop,
  on a >= 50k-packet synthetic capture. The acceptance bar for the
  pipeline refactor is a >= 5x speedup.
- **Streaming classification**: slots/second through
  :class:`~repro.pipeline.engine.StreamingPipeline` on a replayed
  matrix — the figure a deployment planner needs (how many monitored
  links fit on one core).
"""

import os
import time

import numpy as np
import pytest

from repro.core.engine import Feature, Scheme
from repro.flows.aggregate import aggregate_pcap
from repro.flows.matrix import RateMatrix
from repro.flows.records import TimeAxis
from repro.net.prefix import Prefix
from repro.pipeline import MatrixSlotSource, StreamingPipeline
from repro.routing.aspath import AsPath, AsTier, AutonomousSystem
from repro.routing.rib import Route, RoutingTable
from repro.traffic.packetize import PacketizerConfig, write_pcap

#: The acceptance bar: vectorized ingestion vs the per-packet loop.
MIN_SPEEDUP = 5.0
#: Capture size floor for a meaningful throughput number.
MIN_PACKETS = 50_000


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """A >= 50k-packet capture with a nested 40-route RIB."""
    rng = np.random.default_rng(77)
    prefixes = [Prefix.parse(f"10.{i}.0.0/16") for i in range(32)]
    prefixes += [Prefix.parse(f"10.{i}.{i}.0/24") for i in range(8)]
    routes = [
        Route(prefix, AsPath((64900 + i,)),
              AutonomousSystem(64900 + i, AsTier.STUB))
        for i, prefix in enumerate(prefixes)
    ]
    table = RoutingTable(routes)
    axis = TimeAxis(0.0, 60.0, 6)
    rates = rng.uniform(2e4, 8e4, size=(len(prefixes), axis.num_slots))
    matrix = RateMatrix(prefixes, axis, rates)
    path = str(tmp_path_factory.mktemp("bench") / "ingest.pcap")
    packets = write_pcap(matrix, path, PacketizerConfig(seed=9))
    assert packets >= MIN_PACKETS
    # warm the page cache so both paths time CPU work, not first-touch IO
    with open(path, "rb") as stream:
        while stream.read(1 << 22):
            pass
    return path, table, axis, packets


def _best_of(runs: int, func):
    """Minimum wall time over ``runs`` calls (noise-robust), plus the
    last return value."""
    best = float("inf")
    value = None
    for _ in range(runs):
        start = time.perf_counter()
        value = func()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_ingestion_throughput(capture, report_writer):
    path, table, axis, packets = capture
    size_mb = os.path.getsize(path) / 1e6

    slow_seconds, (slow_matrix, slow_stats) = _best_of(
        2, lambda: aggregate_pcap(path, table, axis, vectorized=False),
    )
    fast_seconds, (fast_matrix, fast_stats) = _best_of(
        3, lambda: aggregate_pcap(path, table, axis, vectorized=True),
    )

    assert np.allclose(slow_matrix.rates, fast_matrix.rates)
    assert slow_stats == fast_stats
    speedup = slow_seconds / fast_seconds
    report_writer("bench_streaming_ingestion", "\n".join([
        f"capture: {packets} packets, {size_mb:.1f} MB, "
        f"{len(table)} routes",
        f"per-packet loop: {slow_seconds:.3f} s "
        f"({packets / slow_seconds:,.0f} pkt/s)",
        f"vectorized path: {fast_seconds:.3f} s "
        f"({packets / fast_seconds:,.0f} pkt/s)",
        f"speedup: {speedup:.1f}x (acceptance bar {MIN_SPEEDUP:.0f}x)",
    ]))
    assert speedup >= MIN_SPEEDUP


def test_streaming_classification_throughput(paper_run, report_writer):
    matrix = paper_run.workloads["east-coast"].matrix
    pipeline = StreamingPipeline(
        MatrixSlotSource(matrix),
        scheme=Scheme.CONSTANT_LOAD, feature=Feature.LATENT_HEAT,
    )
    start = time.perf_counter()
    slots = sum(1 for _ in pipeline.events())
    seconds = time.perf_counter() - start
    assert slots == matrix.num_slots
    slots_per_second = slots / seconds
    # one 5-minute-slot link needs 1/300 slot/s of budget
    links_per_core = slots_per_second * 300.0
    report_writer("bench_streaming_classification", "\n".join([
        f"matrix: {matrix.num_flows} flows x {matrix.num_slots} slots",
        f"classified {slots} slots in {seconds:.3f} s "
        f"({slots_per_second:,.0f} slots/s)",
        f"five-minute-slot links serviceable per core: "
        f"{links_per_core:,.0f}",
    ]))
    assert slots_per_second > 0
