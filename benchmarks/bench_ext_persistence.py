"""Extension: persistence curves — the traffic-engineering payoff.

``P(elephant at t+k | elephant at t)`` is what a re-routing decision at
``t`` actually banks on. The bench contrasts the curves of the
single-feature and latent-heat rules at horizons up to two hours.
"""

from repro.analysis.persistence import (
    persistence_from_result,
    persistence_gain,
)
from repro.analysis.report import format_table
from repro.core.engine import Feature, Scheme

MAX_LAG = 24  # two hours of 5-minute slots


def run_persistence(run):
    curves = {}
    for link in ("west-coast", "east-coast"):
        for feature in Feature:
            result = run.result(link, Scheme.CONSTANT_LOAD, feature)
            curves[(link, feature.value)] = persistence_from_result(
                result, max_lag=MAX_LAG,
            )
    return curves


def test_persistence_curves(benchmark, paper_run, report_writer):
    curves = benchmark.pedantic(run_persistence, args=(paper_run,),
                                rounds=1, iterations=1)

    lags = (1, 6, 12, 24)
    rows = []
    for (link, feature), curve in curves.items():
        rows.append(
            [link, feature]
            + [f"{curve.at_lag(lag):.2f}" for lag in lags]
            + [curve.half_life_slots()]
        )
    table = format_table(
        ["link", "rule", "P(+5min)", "P(+30min)", "P(+1h)", "P(+2h)",
         "half-life (slots)"],
        rows,
        title=("Extension: persistence of the elephant class "
               "(constant-load scheme)"),
    )
    report_writer("ext_persistence", table)

    for link in ("west-coast", "east-coast"):
        single = curves[(link, Feature.SINGLE.value)]
        latent = curves[(link, Feature.LATENT_HEAT.value)]
        # Latent heat dominates the single-feature rule at every horizon.
        assert all(
            latent.at_lag(lag) >= single.at_lag(lag) - 1e-9
            for lag in range(1, MAX_LAG + 1)
        ), link
        assert persistence_gain(single, latent, lag=12) > 1.02, link
