"""Ablation: the measurement interval T.

The paper reports "similar results" for T of 1 and 10 minutes around
the 5-minute default. Our fluid matrix is generated at 5-minute
resolution, so we sweep upwards by rebinning (5, 10, 20 minutes) and
check the classification outcome is qualitatively unchanged: similar
traffic fraction, similar elephant population, holding times that
scale with the slot length rather than collapsing.
"""

from repro.analysis.holding import HoldingTimeAnalysis
from repro.analysis.report import format_table
from repro.core.latent_heat import LatentHeatClassifier
from repro.core.thresholds import ConstantLoadThreshold

REBIN_FACTORS = (1, 2, 4)


def sweep_interval(matrix, busy_hours):
    rows = []
    for factor in REBIN_FACTORS:
        rebinned = matrix.rebin(factor) if factor > 1 else matrix
        # Keep the latent-heat memory at about one hour of wall time.
        window = max(1, 12 // factor)
        classifier = LatentHeatClassifier(
            ConstantLoadThreshold(0.8), window=window,
        )
        result = classifier.classify(rebinned)
        analysis = HoldingTimeAnalysis.from_result(result,
                                                   busy_hours=busy_hours)
        rows.append({
            "minutes": 5 * factor,
            "window": window,
            "mean_count": float(result.elephants_per_slot().mean()),
            "fraction": float(result.traffic_fraction_per_slot().mean()),
            "holding_min": analysis.mean_minutes,
        })
    return rows


def test_interval_sweep(benchmark, paper_run, report_writer):
    matrix = paper_run.workloads["west-coast"].matrix
    rows = benchmark.pedantic(
        sweep_interval, args=(matrix, paper_run.config.busy_hours),
        rounds=1, iterations=1,
    )

    table = format_table(
        ["T (min)", "LH window", "mean elephants", "traffic fraction",
         "holding (min)"],
        [[r["minutes"], r["window"], round(r["mean_count"]),
          f"{r['fraction']:.2f}", f"{r['holding_min']:.0f}"] for r in rows],
        title=("Ablation: measurement interval (paper: 'similar results' "
               "for 1 and 10 minutes; generated resolution bounds us "
               "below at 5)"),
    )
    report_writer("ablation_interval", table)

    base = rows[0]
    for row in rows[1:]:
        # Similar results: population and coverage within a factor ~2.
        assert 0.5 < row["mean_count"] / base["mean_count"] < 2.0
        assert abs(row["fraction"] - base["fraction"]) < 0.15
        assert 0.4 < row["holding_min"] / base["holding_min"] < 3.0
