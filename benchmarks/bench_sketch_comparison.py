"""Extension: per-slot heavy hitters vs latent-heat elephants.

The OSS heavy-hitter toolbox (Space-Saving et al.) answers "who is big
*now*" per interval. This bench quantifies the paper's thesis against
that toolbox: even an exact per-slot top-k oracle churns its member
set, while latent-heat elephants persist.
"""

from repro.analysis.report import format_table
from repro.core.engine import Feature, Scheme
from repro.core.states import HoldingTimeSummary, transition_counts
from repro.sketches.compare import (
    exact_top_k_per_slot,
    mask_agreement,
    space_saving_per_slot,
)


def run_comparison(matrix, latent_result):
    k = max(1, int(latent_result.elephants_per_slot().mean()))
    oracle = exact_top_k_per_slot(matrix, top_k=k)
    sketched = space_saving_per_slot(matrix, capacity=max(4 * k, 64),
                                     top_k=k)
    rows = []
    for name, mask in [
        ("latent-heat", latent_result.elephant_mask),
        (oracle.name, oracle.mask),
        (sketched.name, sketched.mask),
    ]:
        summary = HoldingTimeSummary.from_mask(mask)
        rows.append({
            "name": name,
            "holding": summary.mean_holding_slots,
            "one_slot": summary.single_slot_flows,
            "transitions": int(transition_counts(mask).sum()),
        })
    agreement = mask_agreement(oracle.mask, sketched.mask)
    return rows, agreement


def test_sketch_comparison(benchmark, paper_run, report_writer):
    matrix = paper_run.workloads["west-coast"].matrix
    latent = paper_run.result("west-coast", Scheme.CONSTANT_LOAD,
                              Feature.LATENT_HEAT)
    rows, agreement = benchmark.pedantic(
        run_comparison, args=(matrix, latent), rounds=1, iterations=1,
    )

    table = format_table(
        ["method", "mean holding (slots)", "one-slot flows",
         "total transitions"],
        [[r["name"], f"{r['holding']:.1f}", r["one_slot"],
          r["transitions"]] for r in rows],
        title=("Per-slot heavy hitters vs latent-heat elephants "
               f"(Space-Saving/oracle top-k agreement: {agreement:.2f})"),
    )
    report_writer("sketch_comparison", table)

    by_name = {r["name"]: r for r in rows}
    latent_row = by_name["latent-heat"]
    for name, row in by_name.items():
        if name == "latent-heat":
            continue
        assert latent_row["holding"] > 1.5 * row["holding"], name
        assert latent_row["transitions"] < row["transitions"], name
    # Space-Saving approximates the oracle's member set well.
    assert agreement > 0.6
