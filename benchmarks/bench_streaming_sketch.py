"""Accuracy-vs-memory trajectory of the sketch aggregation backends.

The question a deployment has to answer before swapping the exact flow
table for a sketch: *how small can the candidate table get before the
paper's elephants disappear?* This bench packetizes a synthetic link
with a known elephant population (persistent heavy prefixes over a sea
of mice), streams the capture through every backend, and reports
elephant recall/precision, churn delta, and residual coverage per
capacity.

Acceptance bar: at ``K = 4 x`` the true (exact-run peak) elephant
count, Space-Saving must recover >= 90% of the exact run's
flow-slot elephant verdicts.
"""

import time

import numpy as np
import pytest

from repro.flows.matrix import RateMatrix
from repro.flows.records import TimeAxis
from repro.net.prefix import Prefix
from repro.pipeline import PcapPacketSource, make_backend
from repro.routing.lpm import CompiledLpm
from repro.sketches.streaming_eval import (
    COMPARISON_COLUMNS,
    evaluate_backends,
    run_backend,
    score_against,
)
from repro.traffic.packetize import PacketizerConfig, write_pcap

#: The acceptance bar at K = CAPACITY_FACTOR x true elephant count.
MIN_RECALL = 0.9
CAPACITY_FACTOR = 4

NUM_ELEPHANTS = 10
NUM_MICE = 150
NUM_SLOTS = 6
SLOT_SECONDS = 60.0


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """A capture with persistent elephants over a long tail of mice.

    Rates are sized so the realisation stays under ~100k packets — the
    per-packet packetizer, not the (vectorized) pipeline under test, is
    the expensive stage here.
    """
    rng = np.random.default_rng(1234)
    prefixes = [Prefix.parse(f"10.{i}.0.0/16")
                for i in range(NUM_ELEPHANTS)]
    prefixes += [Prefix.parse(f"172.{16 + i // 200}.{i % 200}.0/24")
                 for i in range(NUM_MICE)]
    axis = TimeAxis(0.0, SLOT_SECONDS, NUM_SLOTS)
    rates = np.zeros((len(prefixes), NUM_SLOTS))
    rates[:NUM_ELEPHANTS] = rng.uniform(4e4, 1e5,
                                        size=(NUM_ELEPHANTS, NUM_SLOTS))
    rates[NUM_ELEPHANTS:] = rng.uniform(5e2, 3e3,
                                        size=(NUM_MICE, NUM_SLOTS))
    rates[NUM_ELEPHANTS:][rng.random((NUM_MICE, NUM_SLOTS)) < 0.3] = 0.0
    matrix = RateMatrix(prefixes, axis, rates)
    path = str(tmp_path_factory.mktemp("sketch") / "elephants.pcap")
    packets = write_pcap(matrix, path, PacketizerConfig(seed=7))
    return path, list(prefixes), packets


def test_sketch_backend_accuracy(capture, report_writer):
    path, prefixes, packets = capture
    make_source = lambda: PcapPacketSource(path)  # noqa: E731
    make_resolver = lambda: CompiledLpm(prefixes)  # noqa: E731

    reference = run_backend(make_source, make_resolver, SLOT_SECONDS)
    true_elephants = reference.peak_elephants
    capacity = CAPACITY_FACTOR * true_elephants

    names = ("space-saving", "misra-gries", "count-min", "sample-hold")
    backends = [
        make_backend(name, capacity=capacity)
        if name != "sample-hold"
        # per-byte sampling sized to catch ~100 kB flows on this trace
        else make_backend(name, capacity=capacity,
                          sampling_probability=1e-4)
        for name in names
    ]
    comparisons = []
    throughput = []
    for backend in backends:
        started = time.perf_counter()
        run = run_backend(make_source, make_resolver, SLOT_SECONDS,
                          backend=backend)
        elapsed = time.perf_counter() - started
        comparisons.append(score_against(reference, run))
        throughput.append(packets / elapsed)

    lines = [
        f"capture: {packets} packets, {len(prefixes)} prefixes, "
        f"{NUM_SLOTS} slots",
        f"exact run: peak {true_elephants} elephants/slot, "
        f"mean {reference.mean_elephants:.1f}, "
        f"churn {reference.churn():.3f}",
        f"capacity K = {CAPACITY_FACTOR} x {true_elephants} "
        f"= {capacity}",
        "",
        " | ".join(COMPARISON_COLUMNS + ["pkt/s"]),
    ]
    for comparison, pps in zip(comparisons, throughput):
        lines.append(" | ".join([str(cell)
                                 for cell in comparison.as_row()]
                                + [f"{pps:.0f}"]))
        assert comparison.run.peak_tracked <= capacity
    report_writer("bench_streaming_sketch", "\n".join(lines))

    by_name = {c.run.backend: c for c in comparisons}
    assert by_name["space-saving"].recall >= MIN_RECALL
    assert by_name["misra-gries"].recall >= MIN_RECALL


def test_capacity_sweep_space_saving(capture, report_writer):
    """Recall trajectory as the candidate table shrinks."""
    path, prefixes, _ = capture
    make_source = lambda: PcapPacketSource(path)  # noqa: E731
    make_resolver = lambda: CompiledLpm(prefixes)  # noqa: E731

    reference, comparisons = evaluate_backends(
        make_source, make_resolver, SLOT_SECONDS,
        [make_backend("space-saving", capacity=k)
         for k in (8, 16, 32, 64)],
    )
    lines = [f"exact: mean {reference.mean_elephants:.1f} elephants/slot",
             " | ".join(COMPARISON_COLUMNS)]
    for comparison in comparisons:
        lines.append(" | ".join(str(cell)
                                for cell in comparison.as_row()))
    report_writer("bench_streaming_sketch_sweep", "\n".join(lines))
    recalls = [c.recall for c in comparisons]
    # more memory never makes the sketch meaningfully worse
    assert recalls[-1] >= recalls[0] - 0.05
    assert recalls[-1] >= MIN_RECALL
