"""In-text claim T3: prefix characteristics of elephants.

Paper: elephants span prefix lengths /12 to /26; of ~100 active /8
networks only three were elephants; prefix size and elephant-ness are
essentially uncorrelated.
"""

from repro.analysis.report import format_paper_comparison, format_table
from repro.experiments.textstats import prefix_reports


def test_prefix_characteristics(benchmark, paper_run, report_writer):
    reports = benchmark.pedantic(
        prefix_reports, args=(paper_run,), rounds=3, iterations=1,
    )

    rows = []
    comparisons = []
    for link, report in reports.items():
        rows.append([
            link,
            f"/{report.min_elephant_length}-/{report.max_elephant_length}",
            f"{report.slash8_elephants}/{report.slash8_active}",
            f"{report.length_rate_correlation:+.3f}",
        ])
        comparisons.append((
            f"{link}: /8 elephants / active /8s", "3 / ~100",
            f"{report.slash8_elephants} / {report.slash8_active}",
        ))
    comparisons.append((
        "corr(prefix length, log rate)", "~0 (\"little correlation\")",
        " ".join(f"{r.length_rate_correlation:+.3f}"
                 for r in reports.values()),
    ))

    length_rows = []
    west = reports["west-coast"]
    for length, share in sorted(west.elephant_share_by_length().items()):
        active = west.active_lengths.get(length, 0)
        elephants = west.elephant_lengths.get(length, 0)
        length_rows.append([f"/{length}", active, elephants,
                            f"{share:.3f}"])
    breakdown = format_table(
        ["prefix length", "active", "elephants", "elephant share"],
        length_rows,
        title="west-coast elephants by prefix length",
    )

    table = format_table(
        ["link", "elephant length span", "/8 elephants", "corr(len, rate)"],
        rows, title="T3: prefix characteristics",
    )
    report_writer(
        "text_prefix_characteristics",
        table + "\n\n" + format_paper_comparison(comparisons)
        + "\n\n" + breakdown,
    )

    for link, report in reports.items():
        assert report.max_elephant_length - report.min_elephant_length >= 8
        assert abs(report.length_rate_correlation) < 0.2, link
        if report.slash8_active:
            slash8_rate = report.slash8_elephants / report.slash8_active
            total_active = sum(report.active_lengths.values())
            total_elephants = sum(report.elephant_lengths.values())
            overall = total_elephants / total_active
            assert slash8_rate < 4 * overall + 0.05, link
