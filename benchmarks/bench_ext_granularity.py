"""Extension: elephants across flow granularities.

The paper's introduction notes the elephants-and-mice pattern at many
flow definitions (prefixes, fixed-length prefixes, ASes). This bench
rolls the BGP-granularity matrix up to /8, /16, /24 and origin-AS keys
and re-runs the classifier: the skew survives aggregation (coarser
keys, higher per-key share) — which is why the phenomenon was reported
at every granularity.
"""

from repro.analysis.report import format_table
from repro.core.latent_heat import LatentHeatClassifier
from repro.core.thresholds import ConstantLoadThreshold
from repro.flows.granularity import aggregate_origin_as, granularity_sweep
from repro.stats.tail import mass_share_of_top


def run_granularities(matrix, table):
    matrices = granularity_sweep(matrix)
    as_rollup = aggregate_origin_as(matrix, table)
    matrices["origin-AS"] = as_rollup.matrix

    rows = []
    for label, rolled in matrices.items():
        result = LatentHeatClassifier(
            ConstantLoadThreshold(0.8)).classify(rolled)
        mid_slot = rolled.num_slots // 2
        rates = rolled.slot_rates(mid_slot)
        skew = mass_share_of_top(rates[rates > 0], 0.10)
        rows.append({
            "granularity": label,
            "keys": rolled.num_flows,
            "mean_count": float(result.elephants_per_slot().mean()),
            "fraction": float(result.traffic_fraction_per_slot().mean()),
            "top10_share": skew,
        })
    return rows


def test_granularity_sweep(benchmark, paper_run, report_writer):
    workload = paper_run.workloads["west-coast"]
    rows = benchmark.pedantic(
        run_granularities, args=(workload.matrix, workload.table),
        rounds=1, iterations=1,
    )

    table = format_table(
        ["granularity", "flow keys", "mean elephants",
         "traffic fraction", "top-10% byte share"],
        [[r["granularity"], r["keys"], round(r["mean_count"]),
          f"{r['fraction']:.2f}", f"{r['top10_share']:.2f}"] for r in rows],
        title=("Extension: elephants across flow granularities "
               "(west-coast link, 0.8-constant-load latent heat)"),
    )
    report_writer("ext_granularity", table)

    by_label = {r["granularity"]: r for r in rows}
    # Coarsening strictly shrinks the key population.
    assert by_label["/8"]["keys"] < by_label["/16"]["keys"]
    assert by_label["/16"]["keys"] <= by_label["bgp-prefix"]["keys"]
    # The elephants-and-mice skew survives at every granularity.
    for row in rows:
        assert row["top10_share"] > 0.3, row["granularity"]
        assert 0.0 < row["mean_count"] < row["keys"]
