"""In-text claim T1: single-feature classification is volatile.

Paper: average elephant holding time of 20-40 minutes during the busy
period, and more than 1000 flows per link that are elephants for just
a single interval.
"""

from repro.analysis.holding import HoldingTimeAnalysis
from repro.analysis.report import format_paper_comparison, format_table
from repro.core.engine import Feature
from repro.experiments.textstats import volatility_grid


def _one_slot_full_horizon(result) -> int:
    analysis = HoldingTimeAnalysis.from_result(result, busy_hours=None)
    return analysis.single_interval_flows


def test_single_feature_volatility(benchmark, paper_run, report_writer):
    grid = benchmark.pedantic(
        volatility_grid, args=(paper_run, Feature.SINGLE),
        rounds=3, iterations=1,
    )

    rows = [[
        stats.link, stats.scheme,
        f"{stats.mean_holding_minutes:.0f}",
        stats.single_interval_flows,
        stats.flows_ever_elephant,
    ] for stats in grid]
    table = format_table(
        ["link", "scheme", "holding (min, busy period)",
         "one-slot flows (busy period)", "flows ever elephant"],
        rows,
        title="T1: single-feature volatility",
    )

    one_slot_totals = {}
    for (link, scheme), result in paper_run.single_feature_results().items():
        one_slot_totals[(link, scheme.value)] = \
            _one_slot_full_horizon(result)
    comparison = format_paper_comparison([
        ("busy-period holding time", "20-40 min",
         f"{min(s.mean_holding_minutes for s in grid):.0f}-"
         f"{max(s.mean_holding_minutes for s in grid):.0f} min"),
        ("one-slot flows per link (full horizon)", "> 1000",
         str(sorted(one_slot_totals.values()))),
    ])
    report_writer("text_single_feature", table + "\n\n" + comparison)

    scale = paper_run.config.scale
    for stats in grid:
        # Paper band is 20-40 min; accept 10-60 across scales/seeds.
        assert 10 < stats.mean_holding_minutes < 60, stats
    for key, count in one_slot_totals.items():
        # >1000 at full scale; proportionally fewer at reduced scale.
        assert count > 600 * scale, key
