"""Figure 1(a): number of elephants per 5-minute slot.

Paper series: 2 links × 2 schemes with latent heat over 28 hours.
Reported shape: west-coast counts burst during working hours while the
east-coast link evolves smoothly; averages around 600 (west) and 500
(east) at full scale.
"""

from repro.analysis.elephants import working_hours_lift
from repro.analysis.report import format_series_summary, format_table
from repro.experiments.figures import Figure1a


def test_fig1a_number_of_elephants(benchmark, paper_run, report_writer):
    figure = benchmark.pedantic(
        Figure1a.from_run, args=(paper_run,), rounds=3, iterations=1,
    )

    rows = []
    for label, series in figure.series.items():
        rows.append([
            label,
            round(series.mean_count),
            round(float(series.counts.min())),
            round(float(series.counts.max())),
            f"{working_hours_lift(series):.2f}",
        ])
    table = format_table(
        ["curve", "mean", "min", "max", "working-hours lift"],
        rows,
        title=("Fig 1(a) number of elephants per slot "
               f"(scale={paper_run.config.scale:g}; paper: ~600 west / "
               "~500 east, bursting on the west link during the day)"),
    )
    series_lines = "\n".join(
        format_series_summary(label, series.counts.tolist())
        for label, series in figure.series.items()
    )
    report_writer("fig1a_elephant_counts",
                  table + "\n\n" + series_lines + "\n\n" + figure.render())

    # Shape assertions (the paper's qualitative claims).
    counts = figure.mean_counts()
    for label, mean_count in counts.items():
        assert 20 < mean_count < 3000, label
    west_lift = max(
        working_hours_lift(series)
        for label, series in figure.series.items() if "west" in label
    )
    east_lift = max(
        working_hours_lift(series)
        for label, series in figure.series.items() if "east" in label
    )
    assert west_lift > east_lift
