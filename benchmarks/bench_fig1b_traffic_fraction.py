"""Figure 1(b): fraction of total traffic apportioned to elephants.

Paper shape: roughly 0.6 for both links and both schemes, clearly
below the 0.8-constant-load target (latent heat evicts non-persistent
flows), and less fluctuating than the elephant-count series.
"""

from repro.analysis.report import format_table
from repro.experiments.figures import Figure1b


def test_fig1b_traffic_fraction(benchmark, paper_run, report_writer):
    figure = benchmark.pedantic(
        Figure1b.from_run, args=(paper_run,), rounds=3, iterations=1,
    )

    rows = []
    for label, series in figure.series.items():
        rows.append([
            label,
            f"{series.mean_fraction:.2f}",
            f"{series.traffic_fraction.min():.2f}",
            f"{series.traffic_fraction.max():.2f}",
            f"{series.fraction_stability():.3f}",
            f"{series.count_variability():.3f}",
        ])
    table = format_table(
        ["curve", "mean", "min", "max", "cv(fraction)", "cv(count)"],
        rows,
        title=("Fig 1(b) fraction of traffic apportioned to elephants "
               "(paper: ~0.6, below the 0.8 target, steadier than the "
               "count series)"),
    )
    report_writer("fig1b_traffic_fraction", table + "\n\n" + figure.render())

    for label, series in figure.series.items():
        assert 0.4 < series.mean_fraction < 0.85, label
        # The constant-load curves must sit below their 0.8 target.
        if "constant load" in label:
            assert series.mean_fraction < 0.80, label
        # Fig 1(b) is steadier than Fig 1(a).
        assert series.fraction_stability() < series.count_variability(), \
            label
