"""Substrate micro-benchmarks: the pieces the pipeline is built from.

These are genuine pytest-benchmark timings (many rounds), unlike the
figure benches which time a one-shot analysis: radix-trie longest
prefix match, pcap encode/decode, the aest estimator, and a full
classification pass.
"""

import io

import numpy as np
import pytest

from repro.core.latent_heat import LatentHeatClassifier
from repro.core.thresholds import ConstantLoadThreshold
from repro.net import ipv4
from repro.pcap.packet import build_frame, build_udp_packet, summarize_record
from repro.pcap.pcapfile import CaptureRecord, PcapReader, PcapWriter
from repro.routing.ribgen import RibGeneratorConfig, generate_rib
from repro.stats.aest import aest


@pytest.fixture(scope="module")
def rib():
    return generate_rib(RibGeneratorConfig(num_routes=5000, seed=17))


@pytest.fixture(scope="module")
def addresses(rig=None):
    rng = np.random.default_rng(3)
    return [int(a) for a in rng.integers(1 << 24, 224 << 24, size=10_000)]


def test_radix_lookup_throughput(benchmark, rib, addresses):
    def lookup_all():
        hits = 0
        for address in addresses:
            if rib.resolve(address) is not None:
                hits += 1
        return hits

    hits = benchmark(lookup_all)
    assert hits > 0


def test_radix_build(benchmark):
    config = RibGeneratorConfig(num_routes=2000, seed=23)
    table = benchmark(generate_rib, config)
    assert len(table) == 2000


def test_pcap_write_read(benchmark):
    packet = build_udp_packet(
        ipv4.parse_ipv4("10.0.0.1"), ipv4.parse_ipv4("192.0.2.5"),
        4000, 80, b"x" * 512,
    )
    frame = build_frame(packet)
    records = [CaptureRecord(timestamp=float(i) * 1e-3, data=frame)
               for i in range(2000)]

    def roundtrip():
        buffer = io.BytesIO()
        with_writer = PcapWriter(buffer)
        with_writer.write_all(records)
        buffer.seek(0)
        reader = PcapReader(buffer)
        return sum(1 for _ in reader)

    count = benchmark(roundtrip)
    assert count == 2000


def test_packet_summarise(benchmark):
    packet = build_udp_packet(
        ipv4.parse_ipv4("10.0.0.1"), ipv4.parse_ipv4("192.0.2.5"),
        4000, 80, b"y" * 256,
    )
    record = CaptureRecord(timestamp=1.0, data=build_frame(packet))

    summary = benchmark(summarize_record, record)
    assert summary.destination == ipv4.parse_ipv4("192.0.2.5")


def test_aest_runtime(benchmark):
    rng = np.random.default_rng(11)
    samples = (rng.pareto(1.1, 5000) + 1.0) * 1e4

    result = benchmark(aest, samples)
    assert result.is_heavy


def test_classification_pass(benchmark, paper_run):
    matrix = paper_run.workloads["east-coast"].matrix
    classifier = LatentHeatClassifier(ConstantLoadThreshold(0.8))

    result = benchmark.pedantic(classifier.classify, args=(matrix,),
                                rounds=3, iterations=1)
    assert result.elephants_per_slot().sum() > 0
