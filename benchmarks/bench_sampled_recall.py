"""Elephant recall under packet sampling with inversion correction.

Backbone monitors rarely see every packet: NetFlow-style 1-in-N
sampling is the operational norm. This bench measures what that costs
the paper's latent-heat classifier. A heavy-tailed synthetic capture
(persistent elephants over a long tail of mice) is streamed through the
full sampled pipeline — probabilistic 1-in-N selection, byte inversion
(x N), a Space-Saving table at ``K = 4 x`` the true elephant count, and
the classifier's variance guard — and each rate's elephant verdicts are
scored against the exact unsampled run.

The CI gate: at 1-in-:data:`GATED_RATE` with inversion enabled, pooled
recall must stay >= :data:`MIN_SAMPLED_RECALL`. The 1-in-1000 row is
recorded for the trend line but not gated (at that rate a 60 s slot
sees only a handful of packets per elephant). A no-inversion control
row at the gated rate shows what the correction buys: the
constant-load verdict is scale-invariant, so single-monitor *recall*
survives without inversion — but the *byte volumes* it reports are
~1/N of the truth, which is exactly what breaks mixed-rate merges.
The control asserts that split: inverted totals track the true
volume, uninverted totals sit near 1/N of it.

Numbers land in ``benchmarks/reports/`` twice: a human table
(``bench_sampled_recall.txt``) and ``BENCH_sampled_recall.json`` for
the CI artifact trail.
"""

import json
import os

import numpy as np
import pytest

from repro.flows.matrix import RateMatrix
from repro.flows.records import TimeAxis
from repro.net.prefix import Prefix
from repro.pipeline import (
    AggregatingSlotSource,
    PcapPacketSource,
    PipelineSpec,
    SamplingSpec,
    StreamingAggregator,
    StreamingPipeline,
)
from repro.routing.lpm import CompiledLpm
from repro.sketches.streaming_eval import run_backend
from repro.traffic.packetize import PacketizerConfig, write_pcap

#: The CI gate: pooled recall at the gated sampling rate (inverted).
MIN_SAMPLED_RECALL = 0.85
GATED_RATE = 100
#: Sampling rates swept (1 = unsampled control).
SAMPLE_RATES = (1, 10, 100, 1000)
CAPACITY_FACTOR = 4

NUM_ELEPHANTS = 10
NUM_MICE = 150
NUM_SLOTS = 6
SLOT_SECONDS = 60.0

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """Persistent elephants over a long tail of mice, as a pcap."""
    rng = np.random.default_rng(8675)
    prefixes = [Prefix.parse(f"10.{i}.0.0/16")
                for i in range(NUM_ELEPHANTS)]
    prefixes += [Prefix.parse(f"172.{16 + i // 200}.{i % 200}.0/24")
                 for i in range(NUM_MICE)]
    axis = TimeAxis(0.0, SLOT_SECONDS, NUM_SLOTS)
    rates = np.zeros((len(prefixes), NUM_SLOTS))
    # elephants strong enough that a 1-in-100 sample still sees tens
    # of packets per slot; the gate measures the classifier, not shot
    # noise on a nearly-empty sample
    rates[:NUM_ELEPHANTS] = rng.uniform(2e5, 5e5,
                                        size=(NUM_ELEPHANTS, NUM_SLOTS))
    rates[NUM_ELEPHANTS:] = rng.uniform(5e2, 3e3,
                                        size=(NUM_MICE, NUM_SLOTS))
    rates[NUM_ELEPHANTS:][rng.random((NUM_MICE, NUM_SLOTS)) < 0.3] = 0.0
    matrix = RateMatrix(prefixes, axis, rates)
    path = str(tmp_path_factory.mktemp("sampled") / "elephants.pcap")
    packets = write_pcap(matrix, path, PacketizerConfig(seed=23))
    return path, list(prefixes), packets


def write_bench_json(payload: dict) -> None:
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, "BENCH_sampled_recall.json")
    existing = {}
    if os.path.exists(path):
        with open(path) as stream:
            existing = json.load(stream)
    existing.update(payload)
    with open(path, "w") as stream:
        json.dump(existing, stream, indent=2, sort_keys=True)


def sampled_run(path, prefixes, spec):
    """Stream the capture through a PipelineSpec.

    Returns ``(slot → elephant set, estimated total bytes)``. Sets are
    keyed by slot index because heavy sampling can swallow whole
    leading or trailing slots; scoring aligns on the slot grid rather
    than assuming both runs emitted the same frame count.
    """
    source = spec.wrap_source(PcapPacketSource(path))
    aggregator = StreamingAggregator(
        CompiledLpm(prefixes), slot_seconds=SLOT_SECONDS, start=0.0,
        backend=spec.build_backend(),
        sample_rate=spec.sampling.applied_rate,
    )
    pipeline = StreamingPipeline(
        AggregatingSlotSource(source, aggregator),
        sampling=spec.sampling,
    )
    sets = {}
    total = 0.0
    for event in pipeline.events():
        sets[event.frame.slot] = frozenset(event.elephant_prefixes)
        total += float(event.frame.rates.sum()) * SLOT_SECONDS / 8.0
    return sets, total


def pooled_scores(reference, candidate):
    """Recall/precision pooled over flow-slots on the shared grid."""
    slots = sorted(set(reference) | set(candidate))
    hits = sum(len(reference.get(s, frozenset())
                   & candidate.get(s, frozenset())) for s in slots)
    truth = sum(len(reference.get(s, frozenset())) for s in slots)
    claimed = sum(len(candidate.get(s, frozenset())) for s in slots)
    recall = hits / truth if truth else 1.0
    precision = hits / claimed if claimed else 1.0
    return recall, precision


def test_sampled_recall_sweep(capture, report_writer):
    """Recall vs sampling rate, inversion on; gate at GATED_RATE."""
    path, prefixes, packets = capture
    make_source = lambda: PcapPacketSource(path)  # noqa: E731
    make_resolver = lambda: CompiledLpm(prefixes)  # noqa: E731
    exact = run_backend(make_source, make_resolver, SLOT_SECONDS)
    true_elephants = exact.peak_elephants
    capacity = CAPACITY_FACTOR * true_elephants
    reference = {i: s for i, s in enumerate(exact.elephant_sets)}
    true_bytes = sum(float(batch.wire_bytes.sum())
                     for batch in PcapPacketSource(path).batches())

    rows = {}
    volumes = {}
    for rate in SAMPLE_RATES:
        spec = PipelineSpec(
            backend="space-saving", capacity=capacity,
            sampling=SamplingSpec(rate=rate, mode="probabilistic",
                                  seed=rate),
        )
        sets, estimated = sampled_run(path, prefixes, spec)
        rows[rate] = pooled_scores(reference, sets)
        volumes[rate] = estimated / true_bytes

    # control: the gated rate without inversion — single-monitor
    # verdicts are scale-invariant, but the reported volumes drop to
    # ~1/N of the truth, which is what breaks a mixed-rate merge
    control_spec = PipelineSpec(
        backend="space-saving", capacity=capacity,
        sampling=SamplingSpec(rate=GATED_RATE, mode="probabilistic",
                              seed=GATED_RATE, invert=False),
    )
    control_sets, control_bytes = sampled_run(
        path, prefixes, control_spec)
    control_recall, _ = pooled_scores(reference, control_sets)
    control_volume = control_bytes / true_bytes

    lines = [
        f"capture: {packets} packets, {len(prefixes)} prefixes, "
        f"{NUM_SLOTS} slots",
        f"exact run: peak {true_elephants} elephants/slot, "
        f"K = {CAPACITY_FACTOR} x {true_elephants} = {capacity}",
        "",
        "rate   | recall | precision | est/true bytes",
    ]
    lines += [f"1/{rate:<4d} | {rows[rate][0]:6.3f} | "
              f"{rows[rate][1]:9.3f} | {volumes[rate]:14.3f}"
              for rate in SAMPLE_RATES]
    lines += [
        "",
        f"gate: recall >= {MIN_SAMPLED_RECALL} at 1/{GATED_RATE} "
        "(1/1000 recorded, not gated)",
        f"no-inversion control at 1/{GATED_RATE}: "
        f"recall {control_recall:.3f}, "
        f"est/true bytes {control_volume:.4f}",
    ]
    report_writer("bench_sampled_recall", "\n".join(lines))
    write_bench_json({"sampled_recall": {
        "capacity": capacity,
        "true_elephants": true_elephants,
        "rates": {str(rate): {
            "recall": round(rows[rate][0], 4),
            "precision": round(rows[rate][1], 4),
            "volume_ratio": round(volumes[rate], 4),
        } for rate in SAMPLE_RATES},
        "no_invert_control": {
            "recall": round(control_recall, 4),
            "volume_ratio": round(control_volume, 4),
        },
        "gated_rate": GATED_RATE,
        "min_recall_gate": MIN_SAMPLED_RECALL,
    }})

    # the unsampled spec run carries only sketch-truncation error, so
    # it must clear the same bar as the bounded-memory benches; the CI
    # gate proper is the inverted gated rate
    assert rows[1][0] >= MIN_SAMPLED_RECALL
    assert rows[GATED_RATE][0] >= MIN_SAMPLED_RECALL
    # inversion keeps the byte estimates commensurable with the truth;
    # skipping it leaves them at ~1/N — the mixed-rate-merge failure
    assert 0.8 <= volumes[GATED_RATE] <= 1.2
    assert control_volume < 3.0 / GATED_RATE
